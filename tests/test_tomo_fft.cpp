#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "common/rng.hpp"
#include "tomo/fft.hpp"
#include "tomo/filters.hpp"

namespace alsflow::tomo {
namespace {

using cplx = std::complex<double>;

TEST(Fft, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
  EXPECT_EQ(next_pow2(1024), 1024u);
}

TEST(Fft, RejectsNonPowerOfTwoSizes) {
  // Hard check in all build types: release builds must not silently
  // corrupt data when handed an unpadded buffer. Callers pad via
  // next_pow2 first.
  for (std::size_t n : {3u, 5u, 6u, 7u, 12u, 100u, 1000u}) {
    std::vector<cplx> a(n, {1.0, 0.0});
    EXPECT_THROW(fft(a, false), std::invalid_argument) << n;
    EXPECT_THROW(fft(a, true), std::invalid_argument) << n;
  }
  std::vector<cplx> empty;
  EXPECT_THROW(fft(empty, false), std::invalid_argument);
}

TEST(Fft2, RejectsBadDimensions) {
  std::vector<cplx> a(6 * 8, {1.0, 0.0});
  EXPECT_THROW(fft2(a, 6, 8, false), std::invalid_argument);   // ny not pow2
  a.assign(8 * 6, {1.0, 0.0});
  EXPECT_THROW(fft2(a, 8, 6, false), std::invalid_argument);   // nx not pow2
  a.assign(10, {1.0, 0.0});
  EXPECT_THROW(fft2(a, 8, 8, false), std::invalid_argument);   // size mismatch
}

TEST(Fft, PaddedCallSitesStillRoundTrip) {
  // The supported recipe for arbitrary lengths: pad to next_pow2.
  const std::size_t raw = 100;
  std::vector<cplx> a(next_pow2(raw), {0.0, 0.0});
  for (std::size_t i = 0; i < raw; ++i) a[i] = double(i);
  auto orig = a;
  fft(a, false);
  fft(a, true);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(std::abs(a[i] - orig[i]), 0.0, 1e-10);
  }
}

TEST(Fft, DeltaFunctionIsFlat) {
  std::vector<cplx> a(8, {0.0, 0.0});
  a[0] = 1.0;
  fft(a, false);
  for (const auto& x : a) {
    EXPECT_NEAR(x.real(), 1.0, 1e-12);
    EXPECT_NEAR(x.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, SingleToneLandsInOneBin) {
  const std::size_t n = 64;
  std::vector<cplx> a(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = std::cos(2.0 * M_PI * 5.0 * double(i) / double(n));
  }
  fft(a, false);
  // Bins 5 and n-5 hold n/2 each; everything else ~0.
  EXPECT_NEAR(std::abs(a[5]), double(n) / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(a[n - 5]), double(n) / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(a[4]), 0.0, 1e-9);
  EXPECT_NEAR(std::abs(a[0]), 0.0, 1e-9);
}

TEST(Fft, RoundTripRestoresSignal) {
  Rng rng(1);
  std::vector<cplx> a(256);
  for (auto& x : a) x = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  auto orig = a;
  fft(a, false);
  fft(a, true);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].real(), orig[i].real(), 1e-10);
    EXPECT_NEAR(a[i].imag(), orig[i].imag(), 1e-10);
  }
}

TEST(Fft, ParsevalHolds) {
  Rng rng(2);
  std::vector<cplx> a(128);
  double time_energy = 0.0;
  for (auto& x : a) {
    x = {rng.uniform(-1, 1), 0.0};
    time_energy += std::norm(x);
  }
  fft(a, false);
  double freq_energy = 0.0;
  for (const auto& x : a) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy / double(a.size()), time_energy, 1e-9);
}

TEST(Fft, LinearityHolds) {
  Rng rng(3);
  const std::size_t n = 64;
  std::vector<cplx> a(n), b(n), sum(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = {rng.uniform(-1, 1), 0.0};
    b[i] = {rng.uniform(-1, 1), 0.0};
    sum[i] = a[i] + 2.0 * b[i];
  }
  fft(a, false);
  fft(b, false);
  fft(sum, false);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(sum[i] - (a[i] + 2.0 * b[i])), 0.0, 1e-10);
  }
}

TEST(Fft2, RoundTrip2D) {
  Rng rng(4);
  const std::size_t ny = 16, nx = 32;
  std::vector<cplx> a(ny * nx);
  for (auto& x : a) x = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  auto orig = a;
  fft2(a, ny, nx, false);
  fft2(a, ny, nx, true);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(std::abs(a[i] - orig[i]), 0.0, 1e-10);
  }
}

TEST(Fft2, DcBinIsSum) {
  const std::size_t ny = 8, nx = 8;
  std::vector<cplx> a(ny * nx, {1.0, 0.0});
  fft2(a, ny, nx, false);
  EXPECT_NEAR(a[0].real(), 64.0, 1e-10);
  EXPECT_NEAR(std::abs(a[1]), 0.0, 1e-10);
}

TEST(FilterResponse, RampIsZeroAtDcLinearInFrequency) {
  auto r = filter_response(FilterKind::Ramp, 64);
  EXPECT_DOUBLE_EQ(r[0], 0.0);
  EXPECT_NEAR(r[1], 1.0 / 64.0, 1e-12);
  EXPECT_NEAR(r[32], 0.5, 1e-12);       // Nyquist: |k|/N = 32/64
  EXPECT_NEAR(r[63], 1.0 / 64.0, 1e-12);  // negative frequency -1
  EXPECT_DOUBLE_EQ(r[16], r[64 - 16]);    // symmetric
}

TEST(FilterResponse, WindowsAttenuateHighFrequencies) {
  const std::size_t n = 128;
  auto ramp = filter_response(FilterKind::Ramp, n);
  for (FilterKind k : {FilterKind::SheppLogan, FilterKind::Hann,
                       FilterKind::Hamming, FilterKind::Cosine}) {
    auto r = filter_response(k, n);
    // Near Nyquist the windowed response is below the pure ramp.
    EXPECT_LT(r[n / 2], ramp[n / 2]) << filter_name(k);
    // Low frequencies nearly unattenuated.
    EXPECT_NEAR(r[1] / ramp[1], 1.0, 0.05) << filter_name(k);
  }
}

TEST(FilterResponse, HannReachesZeroAtNyquist) {
  auto r = filter_response(FilterKind::Hann, 64);
  EXPECT_NEAR(r[32], 0.0, 1e-12);
}

TEST(FilterNames, RoundTrip) {
  for (FilterKind k : {FilterKind::None, FilterKind::Ramp,
                       FilterKind::SheppLogan, FilterKind::Hann,
                       FilterKind::Hamming, FilterKind::Cosine,
                       FilterKind::Butterworth}) {
    EXPECT_EQ(filter_from_name(filter_name(k)), k);
  }
  EXPECT_THROW(filter_from_name("bogus"), std::invalid_argument);
}

TEST(ProjectionFilter, NoneIsIdentity) {
  ProjectionFilter pf(FilterKind::None, 16);
  std::vector<float> in(16), out(16);
  for (std::size_t i = 0; i < 16; ++i) in[i] = float(i);
  pf.apply(in, out);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_FLOAT_EQ(out[i], in[i]);
}

TEST(ProjectionFilter, RemovesDcComponent) {
  ProjectionFilter pf(FilterKind::Ramp, 64);
  std::vector<float> in(64, 3.0f), out(64);
  pf.apply(in, out);
  // A constant has only DC energy; padding leaves edge ringing, so check
  // the interior is strongly suppressed.
  for (std::size_t i = 16; i < 48; ++i) EXPECT_NEAR(out[i], 0.0f, 0.05f);
}

TEST(ProjectionFilter, InPlaceMatchesOutOfPlace) {
  ProjectionFilter pf(FilterKind::SheppLogan, 32);
  Rng rng(5);
  std::vector<float> a(32), b(32), out(32);
  for (std::size_t i = 0; i < 32; ++i) a[i] = b[i] = float(rng.uniform(0, 2));
  pf.apply(a, out);
  pf.apply(b, b);  // aliased
  for (std::size_t i = 0; i < 32; ++i) EXPECT_FLOAT_EQ(b[i], out[i]);
}

}  // namespace
}  // namespace alsflow::tomo
