// src/monitor test suite.
//
// Three layers:
//  * unit tests for the SLO engine (burn-rate math, escalation, resolve),
//    the scan-trace assembler (stage taxonomy, synthetic span trees) and
//    the flight recorder (ring bounds, snapshot JSON, metric deltas);
//  * the chaos -> alert matrix: one test per FaultKind, each asserting the
//    HealthMonitor raises a correctly *attributed* alert (right SLO, right
//    link/route/facility/endpoint) when that fault is injected into the
//    golden campaign rig from test_chaos.cpp;
//  * the two system invariants: a fault-free campaign with the monitor
//    installed raises zero alerts (no false positives), and a monitored
//    chaos campaign is byte-deterministic for a fixed seed.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "chaos/chaos_engine.hpp"
#include "chaos/scenario.hpp"
#include "common/telemetry.hpp"
#include "monitor/flight_recorder.hpp"
#include "monitor/health_monitor.hpp"
#include "monitor/slo.hpp"
#include "monitor/trace_assembler.hpp"
#include "pipeline/facility.hpp"

namespace alsflow::monitor {
namespace {

using chaos::ChaosEngine;
using chaos::FaultKind;
using chaos::Scenario;
using pipeline::Facility;
using pipeline::FacilityConfig;
using pipeline::ScanOptions;
using pipeline::ScanOutcome;

telemetry::MonitorEvent mk(double t, const char* component, const char* kind,
                           const char* target, double value, bool ok = true,
                           const char* detail = "") {
  telemetry::MonitorEvent ev;
  ev.t = t;
  ev.component = component;
  ev.kind = kind;
  ev.target = target;
  ev.value = value;
  ev.ok = ok;
  ev.detail = detail;
  return ev;
}

bool has_alert(const std::vector<Alert>& alerts, const std::string& slo,
               const std::string& target = "",
               const std::string& detail_sub = "") {
  for (const Alert& a : alerts) {
    if (a.slo != slo) continue;
    if (!target.empty() && a.target != target) continue;
    if (!detail_sub.empty() &&
        a.detail.find(detail_sub) == std::string::npos) {
      continue;
    }
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// SloEngine unit tests
// ---------------------------------------------------------------------------

SloSpec flag_spec(double target_fraction, std::size_t min_samples,
                  std::vector<BurnRule> rules) {
  SloSpec s;
  s.name = "availability";
  s.component = "svc";
  s.kind = "op";
  s.stage = "transfer";
  s.use_ok_flag = true;
  s.target_fraction = target_fraction;
  s.min_samples = min_samples;
  s.rules = std::move(rules);
  return s;
}

TEST(SloEngineUnit, BurnRateNeedsBothWindowsAndFires) {
  SloEngine eng;
  eng.add(flag_spec(0.9, 3, {{600.0, 2.0, Severity::Ticket}}));
  // Eight good samples: no alert, healthy series.
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(eng.ingest(mk(10.0 * i, "svc", "op", "a", 1.0)).empty());
  }
  // One bad sample: burn_long = (1/9)/0.1 = 1.1 < 2.0 — still quiet.
  EXPECT_TRUE(eng.ingest(mk(100.0, "svc", "op", "a", 0.0, false,
                            "timeout")).empty());
  EXPECT_TRUE(eng.active_alerts().empty());
  // Two more bad samples push both windows over 2x budget burn.
  eng.ingest(mk(110.0, "svc", "op", "a", 0.0, false, "timeout"));
  eng.ingest(mk(120.0, "svc", "op", "a", 0.0, false, "timeout"));
  auto active = eng.active_alerts();
  ASSERT_EQ(active.size(), 1u);
  EXPECT_EQ(active[0].slo, "availability");
  EXPECT_EQ(active[0].target, "a");
  EXPECT_EQ(active[0].stage, "transfer");
  EXPECT_EQ(active[0].severity, Severity::Ticket);
  EXPECT_EQ(active[0].detail, "timeout");  // dominant bad-sample cause
  EXPECT_GE(active[0].burn_long, 2.0);
  EXPECT_GE(active[0].burn_short, 2.0);
}

TEST(SloEngineUnit, MinSamplesGatesSparseSeries) {
  SloEngine eng;
  eng.add(flag_spec(0.9, 5, {{600.0, 2.0, Severity::Ticket}}));
  // Three all-bad samples burn far over threshold but cannot fire: the
  // long window holds fewer than min_samples observations.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(
        eng.ingest(mk(10.0 * i, "svc", "op", "a", 0.0, false)).empty());
  }
  EXPECT_TRUE(eng.alerts().empty());
}

TEST(SloEngineUnit, TargetsKeepIndependentSeries) {
  SloEngine eng;
  eng.add(flag_spec(0.9, 3, {{600.0, 2.0, Severity::Ticket}}));
  for (int i = 0; i < 5; ++i) {
    eng.ingest(mk(10.0 * i, "svc", "op", "healthy", 1.0));
    eng.ingest(mk(10.0 * i, "svc", "op", "broken", 0.0, false));
  }
  auto alerts = eng.alerts();
  EXPECT_TRUE(has_alert(alerts, "availability", "broken"));
  EXPECT_FALSE(has_alert(alerts, "availability", "healthy"));
}

TEST(SloEngineUnit, ValueObjectiveClassifiesBothDirections) {
  SloEngine eng;
  SloSpec latency;
  latency.name = "latency";
  latency.component = "svc";
  latency.kind = "lat";
  latency.objective = 10.0;  // value <= 10 is good
  latency.target_fraction = 0.5;
  latency.min_samples = 2;
  latency.rules = {{600.0, 1.5, Severity::Ticket}};
  eng.add(latency);
  SloSpec goodput;
  goodput.name = "goodput";
  goodput.component = "svc";
  goodput.kind = "bps";
  goodput.objective = 100.0;  // value >= 100 is good
  goodput.higher_is_better = true;
  goodput.target_fraction = 0.5;
  goodput.min_samples = 2;
  goodput.rules = {{600.0, 1.5, Severity::Ticket}};
  eng.add(goodput);

  for (int i = 0; i < 4; ++i) {
    eng.ingest(mk(10.0 * i, "svc", "lat", "a", 50.0));   // bad: too slow
    eng.ingest(mk(10.0 * i, "svc", "bps", "a", 20.0));   // bad: too little
  }
  EXPECT_TRUE(has_alert(eng.alerts(), "latency", "a"));
  EXPECT_TRUE(has_alert(eng.alerts(), "goodput", "a"));

  SloEngine quiet;
  quiet.add(latency);
  quiet.add(goodput);
  for (int i = 0; i < 4; ++i) {
    quiet.ingest(mk(10.0 * i, "svc", "lat", "a", 5.0));    // good
    quiet.ingest(mk(10.0 * i, "svc", "bps", "a", 500.0));  // good
  }
  EXPECT_TRUE(quiet.alerts().empty());
}

TEST(SloEngineUnit, TicketEscalatesToPageAndClosesTicket) {
  SloEngine eng;
  eng.add(flag_spec(0.9, 3,
                    {{60.0, 10.0, Severity::Page},      // all-bad minute
                     {600.0, 2.0, Severity::Ticket}}));  // sustained burn
  for (int i = 0; i < 8; ++i) {
    eng.ingest(mk(10.0 * i, "svc", "op", "a", 1.0));
  }
  // Moderate failure rate opens the slow-window ticket.
  eng.ingest(mk(80.0, "svc", "op", "a", 0.0, false));
  eng.ingest(mk(90.0, "svc", "op", "a", 0.0, false));
  auto active = eng.active_alerts();
  ASSERT_EQ(active.size(), 1u);
  EXPECT_EQ(active[0].severity, Severity::Ticket);

  // A dense all-bad burst saturates the fast window: escalation closes the
  // ticket and opens a page on the same series.
  for (int i = 0; i < 7; ++i) {
    eng.ingest(mk(200.0 + double(i), "svc", "op", "a", 0.0, false));
  }
  active = eng.active_alerts();
  ASSERT_EQ(active.size(), 1u);
  EXPECT_EQ(active[0].severity, Severity::Page);
  auto all = eng.alerts();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].severity, Severity::Ticket);
  EXPECT_FALSE(all[0].active());  // closed at escalation time
  EXPECT_EQ(all[1].severity, Severity::Page);
}

TEST(SloEngineUnit, RecoveryResolvesOnIngestAndSweep) {
  SloEngine eng;
  eng.add(flag_spec(0.9, 3, {{100.0, 2.0, Severity::Ticket}}));
  for (int i = 0; i < 5; ++i) {
    eng.ingest(mk(double(i), "svc", "op", "a", 0.0, false));
  }
  ASSERT_EQ(eng.active_alerts().size(), 1u);
  // Good samples dilute the window until the burn clears: resolution
  // happens on ingest, stamped with the recovering sample's time.
  for (int i = 0; i < 40; ++i) {
    eng.ingest(mk(10.0 + double(i), "svc", "op", "a", 1.0));
  }
  EXPECT_TRUE(eng.active_alerts().empty());
  auto all = eng.alerts();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_GE(all[0].resolved_at, 10.0);

  // sweep(): a series that merely goes quiet resolves once its samples age
  // out of the window.
  SloEngine idle;
  idle.add(flag_spec(0.9, 3, {{100.0, 2.0, Severity::Ticket}}));
  for (int i = 0; i < 5; ++i) {
    idle.ingest(mk(double(i), "svc", "op", "a", 0.0, false));
  }
  ASSERT_EQ(idle.active_alerts().size(), 1u);
  idle.sweep(500.0);
  EXPECT_TRUE(idle.active_alerts().empty());
}

TEST(SloEngineUnit, RaiseRecordsExternalIncidentAndScalesHealth) {
  SloEngine eng;
  const Alert& a = eng.raise("db_watermark", "run_db", "orchestrate",
                             Severity::Page, 42.0, "watermark_drop(10 -> 0)");
  EXPECT_EQ(a.id, 1u);
  EXPECT_TRUE(a.active());
  ASSERT_EQ(eng.active_alerts().size(), 1u);
  // No series data: health is 1.0 scaled by the active page.
  EXPECT_DOUBLE_EQ(eng.health("run_db", 100.0), 0.5);
  EXPECT_DOUBLE_EQ(eng.health("elsewhere", 100.0), 1.0);
  auto scores = eng.health_scores(100.0);
  ASSERT_EQ(scores.count("run_db"), 1u);
  EXPECT_DOUBLE_EQ(scores["run_db"], 0.5);
}

TEST(SloEngineUnit, HealthReflectsWindowGoodFraction) {
  SloEngine eng;
  eng.add(flag_spec(0.9, 3, {}));  // no rules: health only, never alerts
  eng.ingest(mk(0.0, "svc", "op", "a", 1.0));
  eng.ingest(mk(1.0, "svc", "op", "a", 0.0, false));
  EXPECT_TRUE(eng.alerts().empty());
  EXPECT_DOUBLE_EQ(eng.health("a", 2.0), 0.5);
  EXPECT_DOUBLE_EQ(eng.health("a", 10000.0), 1.0);  // aged out
}

TEST(SloEngineUnit, DefaultServeSpecAlertsPerTenant) {
  SloEngine eng;
  DefaultSloConfig cfg;
  cfg.min_samples = 3;
  for (SloSpec& s : default_slos(cfg)) eng.add(std::move(s));
  // Four queue waits far over the 0.25 s objective for one tenant; a
  // healthy tenant interleaved.
  for (int i = 0; i < 4; ++i) {
    eng.ingest(mk(double(i), "serve", "queue_wait", "tenant-slow", 2.0));
    eng.ingest(mk(double(i), "serve", "queue_wait", "tenant-fast", 0.001));
  }
  EXPECT_TRUE(has_alert(eng.alerts(), "serve_queue_wait", "tenant-slow"));
  EXPECT_FALSE(has_alert(eng.alerts(), "serve_queue_wait", "tenant-fast"));
}

TEST(SloEngineUnit, SummaryListsSeriesWithQuantiles) {
  SloEngine eng;
  DefaultSloConfig cfg;
  for (SloSpec& s : default_slos(cfg)) eng.add(std::move(s));
  for (int i = 0; i < 10; ++i) {
    eng.ingest(mk(double(i), "hpc", "queue_wait", "nersc", 30.0 + i));
  }
  const std::string table = eng.summary(10.0);
  EXPECT_NE(table.find("facility_queue_wait"), std::string::npos);
  EXPECT_NE(table.find("nersc"), std::string::npos);
  EXPECT_NE(table.find("p95"), std::string::npos);
}

// ---------------------------------------------------------------------------
// ScanTraceAssembler unit tests
// ---------------------------------------------------------------------------

telemetry::SpanRecord span(
    telemetry::SpanId id, telemetry::SpanId parent, const char* component,
    const char* name, double start, double end,
    std::vector<std::pair<std::string, std::string>> attrs = {},
    telemetry::ClockDomain domain = telemetry::ClockDomain::Sim) {
  telemetry::SpanRecord s;
  s.id = id;
  s.parent = parent;
  s.component = component;
  s.name = name;
  s.start = start;
  s.end = end;
  s.attrs = std::move(attrs);
  s.domain = domain;
  return s;
}

TEST(TraceAssemblerUnit, StageTaxonomy) {
  using A = ScanTraceAssembler;
  EXPECT_EQ(A::stage_of(span(1, 0, "transfer", "raw_to_cfs", 0, 1)),
            "transfer");
  EXPECT_EQ(A::stage_of(span(1, 0, "hpc", "queue_wait", 0, 1)),
            "facility_queue");
  EXPECT_EQ(A::stage_of(span(1, 0, "hpc", "execute", 0, 1)), "recon");
  EXPECT_EQ(A::stage_of(span(1, 0, "hpc", "nersc:recon", 0, 1)),
            "orchestrate");
  EXPECT_EQ(A::stage_of(span(1, 0, "streaming", "gpu_backprojection", 0, 1)),
            "recon");
  EXPECT_EQ(A::stage_of(span(1, 0, "streaming", "preview_return", 0, 1)),
            "transfer");
  EXPECT_EQ(A::stage_of(span(1, 0, "streaming", "stream:scan-1", 0, 1)),
            "acquisition");
  EXPECT_EQ(A::stage_of(span(1, 0, "scan", "acquisition", 0, 1)),
            "acquisition");
  EXPECT_EQ(A::stage_of(span(1, 0, "scan", "scan-001", 0, 1)), "");
  EXPECT_EQ(A::stage_of(span(1, 0, "flow", "nersc_recon_flow", 0, 1)),
            "orchestrate");
  EXPECT_EQ(A::stage_of(span(1, 0, "task", "scicat_ingest", 0, 1)),
            "publish");
  EXPECT_EQ(A::stage_of(span(1, 0, "task", "publish_volume", 0, 1)),
            "publish");
  EXPECT_EQ(A::stage_of(span(1, 0, "task", "reconstruct", 0, 1)),
            "orchestrate");
  EXPECT_EQ(A::stage_of(span(1, 0, "pool", "parallel_for", 0, 1)), "");
}

TEST(TraceAssemblerUnit, AssemblesSyntheticSpanTree) {
  std::vector<telemetry::SpanRecord> spans;
  // Flow root (parameters carries the scan id) with a task -> hpc subtree.
  spans.push_back(span(1, 0, "flow", "nersc_recon_flow", 0.0, 100.0,
                       {{"run_id", "run-1"}, {"parameters", "scan-001"}}));
  spans.push_back(span(2, 1, "task", "reconstruct", 10.0, 90.0));
  spans.push_back(span(3, 2, "hpc", "nersc:recon", 20.0, 80.0));
  spans.push_back(span(4, 3, "hpc", "queue_wait", 20.0, 50.0));
  spans.push_back(span(5, 3, "hpc", "execute", 50.0, 80.0));
  // Scan umbrella span with the detector acquisition.
  spans.push_back(span(6, 0, "scan", "scan-001", 0.0, 120.0,
                       {{"scan_id", "scan-001"}}));
  spans.push_back(span(7, 6, "scan", "acquisition", 0.0, 10.0));
  // Wall-domain span: excluded from attribution entirely.
  spans.push_back(span(8, 0, "pool", "parallel_for", 0.0, 5.0, {},
                       telemetry::ClockDomain::Wall));

  ScanTraceAssembler asm_(spans);
  ASSERT_EQ(asm_.traces().size(), 1u);
  const ScanTrace& t = asm_.traces()[0];
  EXPECT_EQ(t.scan_id, "scan-001");
  EXPECT_DOUBLE_EQ(t.started, 0.0);
  EXPECT_DOUBLE_EQ(t.finished, 120.0);
  EXPECT_DOUBLE_EQ(t.end_to_end(), 120.0);
  ASSERT_EQ(t.legs.size(), 1u);
  EXPECT_EQ(t.legs[0].flow, "nersc_recon_flow");
  EXPECT_EQ(t.legs[0].run_id, "run-1");
  EXPECT_DOUBLE_EQ(t.legs[0].duration(), 100.0);
  // Self-time attribution: flow 100-80=20, task 80-60=20, hpc residue 0,
  // queue 30, execute 30, acquisition 10; scan umbrella charges nothing.
  EXPECT_DOUBLE_EQ(t.stage_seconds("orchestrate"), 40.0);
  EXPECT_DOUBLE_EQ(t.stage_seconds("facility_queue"), 30.0);
  EXPECT_DOUBLE_EQ(t.stage_seconds("recon"), 30.0);
  EXPECT_DOUBLE_EQ(t.stage_seconds("acquisition"), 10.0);
  EXPECT_DOUBLE_EQ(t.stage_seconds("transfer"), 0.0);
  // Lookups: by scan id and by flow run id land on the same trace.
  EXPECT_EQ(asm_.scan("scan-001"), &t);
  EXPECT_EQ(asm_.run("run-1"), &t);
  EXPECT_EQ(asm_.scan("scan-999"), nullptr);
  EXPECT_EQ(asm_.run("run-999"), nullptr);
  // Render and JSON both carry the scan id and every stage.
  const std::string line = asm_.render(t);
  EXPECT_NE(line.find("scan-001"), std::string::npos);
  for (const char* stage : kStages) {
    EXPECT_NE(line.find(stage), std::string::npos) << stage;
  }
  EXPECT_NE(asm_.json().find("\"scan_id\": \"scan-001\""),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// FlightRecorder unit tests
// ---------------------------------------------------------------------------

std::size_t count_occurrences(const std::string& hay, const std::string& n) {
  std::size_t count = 0;
  for (std::size_t at = hay.find(n); at != std::string::npos;
       at = hay.find(n, at + n.size())) {
    ++count;
  }
  return count;
}

TEST(FlightRecorderUnit, RingsAreBoundedButCountEverything) {
  FlightRecorder::Config cfg;
  cfg.event_capacity = 4;
  cfg.log_capacity = 2;
  FlightRecorder rec(cfg);
  for (int i = 0; i < 10; ++i) {
    rec.record_event(mk(double(i), "svc", "op", "a", double(i)));
  }
  LogRecord lr;
  lr.component = "test";
  for (int i = 0; i < 5; ++i) {
    lr.message = "line " + std::to_string(i);
    rec.record_log(lr);
  }
  EXPECT_EQ(rec.events_recorded(), 10u);
  EXPECT_EQ(rec.logs_recorded(), 5u);
  Alert a;
  a.slo = "availability";
  const std::string snap = rec.snapshot(a, 10.0);
  // Only the newest 4 events and 2 log lines survive in the ring.
  EXPECT_EQ(count_occurrences(snap, "\"kind\": \"op\""), 4u);
  EXPECT_NE(snap.find("\"t\": 9"), std::string::npos);
  EXPECT_EQ(snap.find("\"t\": 0"), std::string::npos);
  EXPECT_EQ(count_occurrences(snap, "line "), 2u);
  EXPECT_NE(snap.find("line 4"), std::string::npos);
}

TEST(FlightRecorderUnit, SnapshotCarriesAlertAndMetricDeltas) {
  auto& tel = telemetry::global();
  tel.clear();
  tel.metrics().counter("fr_test_total").add(7);

  FlightRecorder rec;
  Alert a;
  a.slo = "endpoint_availability";
  a.target = "nersc-cfs";
  a.severity = Severity::Page;
  a.fired_at = 12.5;
  const std::string first = rec.snapshot(a, 12.5);
  EXPECT_NE(first.find("\"slo\": \"endpoint_availability\""),
            std::string::npos);
  EXPECT_NE(first.find("\"severity\": \"PAGE\""), std::string::npos);
  EXPECT_NE(first.find("\"fr_test_total\": 7"), std::string::npos);

  // Second snapshot: only series that moved appear, as deltas.
  tel.metrics().counter("fr_test_total").add(3);
  const std::string second = rec.snapshot(a, 20.0);
  EXPECT_NE(second.find("\"fr_test_total\": 3"), std::string::npos);

  // Third snapshot with no movement: the series is omitted.
  const std::string third = rec.snapshot(a, 30.0);
  EXPECT_EQ(third.find("fr_test_total"), std::string::npos);
  tel.clear();
}

// ---------------------------------------------------------------------------
// Chaos -> alert matrix
// ---------------------------------------------------------------------------

data::ScanMetadata small_scan(std::size_t index) {
  data::ScanMetadata m;
  char id[32];
  std::snprintf(id, sizeof id, "scan-%03zu", index);
  m.scan_id = id;
  m.sample_name = "monitor-sample";
  m.proposal = "ALS-11532";
  m.user = "visiting-user";
  m.rows = 512;
  m.cols = 2560;
  m.n_angles = 500;
  m.bit_depth = 16;
  m.exposure_s = 0.05;
  m.energy_kev = 25.0;
  m.pixel_um = 0.65;
  return m;
}

// SLO tuning for the cropped campaign rig: tighter objectives than the
// production defaults (the rig's healthy queue waits and deliveries are
// near-instant) and a slow window sized to the ~20 min campaign. The
// fault-free test below proves this exact config raises nothing.
DefaultSloConfig rig_slo_config() {
  DefaultSloConfig cfg;
  cfg.link_slowdown_objective = 4.0;
  cfg.link_target_fraction = 0.75;
  cfg.goodput_floor_bps = 100.0;  // cropped transfers: goodput SLO off
  cfg.queue_wait_objective = 60.0;
  cfg.queue_wait_target_fraction = 0.70;
  cfg.scan_e2e_objective = 3600.0;
  cfg.fast_window = 600.0;
  cfg.fast_burn = 2.0;
  cfg.slow_window = 1800.0;
  cfg.slow_burn = 1.0;
  cfg.min_samples = 3;
  return cfg;
}

constexpr int kScans = 4;
constexpr Seconds kInterval = 120.0;

// The golden chaos rig plus an installed HealthMonitor: default SLO set
// (rig-tuned) and a run-database watermark probe.
struct MonitorRig {
  Facility fac;
  ChaosEngine chaos;
  HealthMonitor mon;

  explicit MonitorRig(std::uint64_t seed = 42)
      : fac(make_config(seed)), chaos(fac.engine()), mon(mon_config()) {
    chaos.bind_link(&fac.lan());
    chaos.bind_link(&fac.esnet_nersc());
    chaos.bind_link(&fac.esnet_alcf());
    chaos.bind_adapter(&fac.nersc_adapter());
    chaos.bind_adapter(&fac.alcf_adapter());
    chaos.bind_transfer(&fac.globus());
    chaos.bind_endpoint(&fac.cfs());
    chaos.bind_endpoint(&fac.eagle());
    chaos.bind_flow_engine(&fac.flows());
    chaos.bind_run_db(&fac.run_db());
    mon.add_default_slos(rig_slo_config());
    mon.add_watermark("run_db_task_records", "run_db", "orchestrate", [this] {
      return double(fac.run_db().task_records().size());
    });
    mon.install();
  }

  static FacilityConfig make_config(std::uint64_t seed) {
    FacilityConfig cfg;
    cfg.seed = seed;
    cfg.background_utilization = 0.0;
    return cfg;
  }

  static HealthMonitor::Config mon_config() {
    HealthMonitor::Config cfg;
    cfg.capture_logs = false;  // tests keep the default stderr log sink
    return cfg;
  }

  std::vector<ScanOutcome> run_scans(int n, Seconds interval) {
    std::vector<sim::Future<ScanOutcome>> futs;
    futs.reserve(std::size_t(n));
    ScanOptions options;
    options.streaming = false;
    options.archive = false;
    for (int i = 0; i < n; ++i) {
      fac.engine().schedule_at(double(i) * interval,
                               [this, &futs, i, options] {
        futs.push_back(
            fac.process_scan(small_scan(std::size_t(i)), options));
      });
    }
    fac.engine().run();
    mon.sweep(fac.engine().now());
    std::vector<ScanOutcome> out;
    for (auto& f : futs) {
      if (f.done()) out.push_back(f.value());
    }
    return out;
  }
};

TEST(ChaosAlertMatrix, FaultFreeCampaignRaisesNothing) {
  MonitorRig rig;
  rig.run_scans(kScans, kInterval);
  EXPECT_GT(rig.mon.events_seen(), 0u);
  const auto alerts = rig.mon.alerts();
  EXPECT_TRUE(alerts.empty()) << rig.mon.slo_summary(rig.fac.engine().now())
                              << (alerts.empty() ? ""
                                                 : alerts[0].render().c_str());
  EXPECT_TRUE(rig.mon.incidents().empty());
  // Healthy world: every scored target sits at 1.0.
  for (const auto& [target, score] :
       rig.mon.health_scores(rig.fac.engine().now())) {
    EXPECT_DOUBLE_EQ(score, 1.0) << target;
  }
}

TEST(ChaosAlertMatrix, FacilityOutageAlertsQueueWaitAtThatFacility) {
  MonitorRig rig;
  Scenario s;
  s.name = "nersc_maintenance";
  s.events = {{FaultKind::FacilityOutage, 60.0, 600.0, "nersc", 0.0}};
  rig.chaos.arm(s);
  rig.run_scans(kScans, kInterval);
  const auto alerts = rig.mon.alerts();
  EXPECT_TRUE(has_alert(alerts, "facility_queue_wait", "nersc"))
      << rig.mon.slo_summary(rig.fac.engine().now());
  EXPECT_FALSE(has_alert(alerts, "facility_queue_wait", "alcf"));
  EXPECT_FALSE(rig.mon.incidents().empty());
}

TEST(ChaosAlertMatrix, LinkDegradationAlertsSlowdownOnThatLink) {
  MonitorRig rig;
  Scenario s;
  s.name = "esnet_degraded";
  s.events = {{FaultKind::LinkDegradation, 30.0, 600.0, "esnet-alcf", 0.2}};
  rig.chaos.arm(s);
  rig.run_scans(kScans, kInterval);
  const auto alerts = rig.mon.alerts();
  EXPECT_TRUE(has_alert(alerts, "link_delivery_slowdown", "esnet-alcf"))
      << rig.mon.slo_summary(rig.fac.engine().now());
  EXPECT_FALSE(has_alert(alerts, "link_delivery_slowdown", "esnet-nersc"));
}

TEST(ChaosAlertMatrix, LinkBlackoutAlertsSlowdownOnThatLink) {
  MonitorRig rig;
  Scenario s;
  s.name = "esnet_routing_flap";
  s.events = {{FaultKind::LinkBlackout, 60.0, 300.0, "esnet-nersc", 0.0}};
  rig.chaos.arm(s);
  rig.run_scans(kScans, kInterval);
  const auto alerts = rig.mon.alerts();
  EXPECT_TRUE(has_alert(alerts, "link_delivery_slowdown", "esnet-nersc"))
      << rig.mon.slo_summary(rig.fac.engine().now());
  EXPECT_FALSE(has_alert(alerts, "link_delivery_slowdown", "esnet-alcf"));
}

TEST(ChaosAlertMatrix, TransientBurstAlertsFileReliability) {
  MonitorRig rig;
  Scenario s;
  s.name = "globus_transient_burst";
  s.events = {{FaultKind::TransientBurst, 30.0, 400.0, "", 0.3}};
  rig.chaos.arm(s);
  rig.run_scans(kScans, kInterval);
  EXPECT_TRUE(has_alert(rig.mon.alerts(), "transfer_reliability", "",
                        "transient"))
      << rig.mon.slo_summary(rig.fac.engine().now());
}

TEST(ChaosAlertMatrix, CorruptionBurstAlertsFileReliability) {
  MonitorRig rig;
  Scenario s;
  s.name = "globus_corruption_burst";
  s.events = {{FaultKind::CorruptionBurst, 30.0, 400.0, "", 0.3}};
  rig.chaos.arm(s);
  rig.run_scans(kScans, kInterval);
  EXPECT_TRUE(has_alert(rig.mon.alerts(), "transfer_reliability", "",
                        "checksum_mismatch"))
      << rig.mon.slo_summary(rig.fac.engine().now());
}

TEST(ChaosAlertMatrix, PermissionBurstAlertsEndpointAvailability) {
  MonitorRig rig;
  Scenario s;
  s.name = "cfs_permission_incident";
  s.events = {{FaultKind::PermissionBurst, 40.0, 120.0, "nersc-cfs", 0.0}};
  rig.chaos.arm(s);
  rig.run_scans(kScans, kInterval);
  const auto alerts = rig.mon.alerts();
  EXPECT_TRUE(has_alert(alerts, "endpoint_availability", "nersc-cfs",
                        "permission_denied"))
      << rig.mon.slo_summary(rig.fac.engine().now());
  EXPECT_FALSE(has_alert(alerts, "endpoint_availability",
                         rig.fac.eagle().name()));
}

TEST(ChaosAlertMatrix, RecallLatencySpikeAlertsSlowdownOnThatLink) {
  MonitorRig rig;
  Scenario s;
  s.name = "hpss_recall_queue";
  s.events = {{FaultKind::RecallLatencySpike, 30.0, 600.0, "esnet-nersc",
               45.0}};
  rig.chaos.arm(s);
  rig.run_scans(kScans, kInterval);
  EXPECT_TRUE(
      has_alert(rig.mon.alerts(), "link_delivery_slowdown", "esnet-nersc"))
      << rig.mon.slo_summary(rig.fac.engine().now());
}

TEST(ChaosAlertMatrix, EngineCrashAlertsFlowCompletion) {
  MonitorRig rig;
  Scenario s;
  s.name = "orchestrator_crash";
  s.events = {{FaultKind::EngineCrash, 300.0, 120.0, "", 0.0}};
  rig.chaos.arm(s);
  rig.run_scans(kScans, kInterval);
  EXPECT_TRUE(has_alert(rig.mon.alerts(), "flow_completion", "orchestrator",
                        "interrupted_by_crash"))
      << rig.mon.slo_summary(rig.fac.engine().now());
}

TEST(ChaosAlertMatrix, DatabaseLossTripsWatermarkPage) {
  MonitorRig rig;
  Scenario s;
  s.name = "db_volume_loss";
  s.events = {{FaultKind::DatabaseLoss, 290.0, 0.0, "", 0.0}};
  rig.chaos.arm(s);
  rig.run_scans(kScans, kInterval);
  const auto alerts = rig.mon.alerts();
  bool found = false;
  for (const Alert& a : alerts) {
    if (a.slo == "run_db_task_records" && a.target == "run_db" &&
        a.severity == Severity::Page &&
        a.detail.find("watermark_drop") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << rig.mon.slo_summary(rig.fac.engine().now());
  // The incident snapshot is a self-contained document: alert + evidence.
  const std::vector<std::string> incidents = rig.mon.incidents();
  ASSERT_FALSE(incidents.empty());
  const std::string& snap = incidents.front();
  EXPECT_NE(snap.find("\"alert\""), std::string::npos);
  EXPECT_NE(snap.find("run_db_task_records"), std::string::npos);
  EXPECT_NE(snap.find("\"events\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// System invariants: trace assembly over a real campaign + determinism
// ---------------------------------------------------------------------------

TEST(MonitorSystem, CampaignAssemblesPerScanTraces) {
  auto& tel = telemetry::global();
  tel.clear();
  tel.set_enabled(true);
  MonitorRig rig;
  rig.run_scans(kScans, kInterval);
  ScanTraceAssembler asm_(tel.tracer().spans());
  tel.set_enabled(false);
  tel.clear();

  ASSERT_EQ(asm_.traces().size(), std::size_t(kScans));
  for (const ScanTrace& t : asm_.traces()) {
    EXPECT_GT(t.end_to_end(), 0.0) << t.scan_id;
    // Every scan crosses the WAN and reconstructs at both facilities.
    EXPECT_GT(t.stage_seconds("transfer"), 0.0) << t.scan_id;
    EXPECT_GT(t.stage_seconds("recon"), 0.0) << t.scan_id;
    EXPECT_GT(t.stage_seconds("acquisition"), 0.0) << t.scan_id;
    // new_file + nersc recon + alcf recon legs at minimum.
    EXPECT_GE(t.legs.size(), 3u) << t.scan_id;
    for (const FlowLeg& leg : t.legs) {
      ASSERT_FALSE(leg.run_id.empty());
      EXPECT_EQ(asm_.run(leg.run_id), &t) << leg.run_id;
    }
  }
  EXPECT_NE(asm_.scan("scan-000"), nullptr);
  EXPECT_EQ(asm_.scan("scan-000")->scan_id, "scan-000");
}

TEST(MonitorSystem, MonitoredChaosCampaignIsByteDeterministic) {
  auto run_once = [] {
    auto& tel = telemetry::global();
    tel.clear();
    tel.set_enabled(true);
    MonitorRig rig(1234);
    Scenario s;
    s.name = "determinism_probe";
    s.events = {{FaultKind::TransientBurst, 30.0, 300.0, "", 0.25},
                {FaultKind::LinkDegradation, 100.0, 300.0, "esnet-nersc",
                 0.25}};
    rig.chaos.arm(s);
    rig.run_scans(kScans, kInterval);
    std::string out;
    for (const Alert& a : rig.mon.alerts()) out += a.render() + "\n";
    out += rig.mon.slo_summary(rig.fac.engine().now());
    out += ScanTraceAssembler(tel.tracer().spans()).json();
    char buf[96];
    for (const auto& [target, score] :
         rig.mon.health_scores(rig.fac.engine().now())) {
      std::snprintf(buf, sizeof buf, "H|%s|%.9g\n", target.c_str(), score);
      out += buf;
    }
    tel.set_enabled(false);
    tel.clear();
    return out;
  };
  const std::string a = run_once();
  const std::string b = run_once();
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
  // The probe scenario really alerted (and the digest recorded it).
  EXPECT_NE(a.find("link_delivery_slowdown"), std::string::npos);
}

}  // namespace
}  // namespace alsflow::monitor
