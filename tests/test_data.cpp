#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "data/ah5.hpp"
#include "data/multiscale.hpp"
#include "data/scan_meta.hpp"
#include "data/tiff.hpp"
#include "tomo/metrics.hpp"
#include "tomo/phantom.hpp"

namespace alsflow::data {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("alsflow_test_" + std::to_string(::getpid()));
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

ScanMetadata valid_scan() {
  ScanMetadata m;
  m.scan_id = "20260705_120000_sample";
  m.sample_name = "feather";
  m.proposal = "ALS-12345";
  m.user = "visiting-user";
  m.n_angles = 1969;
  m.rows = 2160;
  m.cols = 2560;
  m.bit_depth = 16;
  m.exposure_s = 0.05;
  m.energy_kev = 25.0;
  m.pixel_um = 0.65;
  return m;
}

TEST(ScanMetadata, ValidScanPasses) {
  EXPECT_TRUE(valid_scan().validate().ok());
}

TEST(ScanMetadata, RejectsMissingFields) {
  auto m = valid_scan();
  m.scan_id.clear();
  EXPECT_EQ(m.validate().error().code, "invalid_metadata");

  m = valid_scan();
  m.n_angles = 0;
  EXPECT_FALSE(m.validate().ok());

  m = valid_scan();
  m.bit_depth = 12;
  EXPECT_FALSE(m.validate().ok());

  m = valid_scan();
  m.exposure_s = -1.0;
  EXPECT_FALSE(m.validate().ok());
}

TEST(ScanMetadata, PaperScaleRawSize) {
  // 1969 projections of 2160 x 2560 16-bit ~ 20 GiB (Section 5.2).
  auto m = valid_scan();
  const double gib = double(m.raw_bytes()) / double(GiB);
  EXPECT_GT(gib, 19.0);
  EXPECT_LT(gib, 21.5);
}

TEST(ScanMetadata, PaperScaleReconSize) {
  // 2160 x 2560 x 2560 float32 ~ 50 GB (Section 5.2).
  auto m = valid_scan();
  const double gb = double(m.recon_bytes()) / 1e9;
  EXPECT_NEAR(gb, 56.6, 1.0);
}

TEST(FrameMetadata, ValidatesAgainstScan) {
  auto scan = valid_scan();
  FrameMetadata f{scan.scan_id, 10, scan.rows, scan.cols, 0.0};
  EXPECT_TRUE(f.validate(scan).ok());

  f.angle_index = scan.n_angles;  // out of range
  EXPECT_EQ(f.validate(scan).error().code, "frame_mismatch");

  f.angle_index = 0;
  f.rows = 1;
  EXPECT_FALSE(f.validate(scan).ok());

  f.rows = scan.rows;
  f.scan_id = "other";
  EXPECT_FALSE(f.validate(scan).ok());
}

TEST(Ah5, AttrsRoundTrip) {
  Ah5File f;
  f.set_attr("scan_id", "abc");
  f.set_attr("energy", "25.0");
  auto bytes = f.serialize();
  auto back = Ah5File::deserialize(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().attr("scan_id").value(), "abc");
  EXPECT_EQ(back.value().attr("energy").value(), "25.0");
  EXPECT_FALSE(back.value().attr("missing").ok());
}

TEST(Ah5, DatasetRoundTrip) {
  Ah5File f;
  Ah5Dataset ds;
  ds.name = "projections";
  ds.dims = {4, 8, 8};
  ds.values.resize(4 * 8 * 8);
  for (std::size_t i = 0; i < ds.values.size(); ++i) {
    ds.values[i] = float(i) * 0.5f;
  }
  ASSERT_TRUE(f.add_dataset(ds).ok());

  auto back = Ah5File::deserialize(f.serialize());
  ASSERT_TRUE(back.ok());
  const auto* got = back.value().dataset("projections");
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->dims, ds.dims);
  EXPECT_EQ(got->values, ds.values);
}

TEST(Ah5, ShapeMismatchRejected) {
  Ah5File f;
  Ah5Dataset ds;
  ds.name = "bad";
  ds.dims = {2, 2};
  ds.values.resize(5);
  EXPECT_EQ(f.add_dataset(ds).error().code, "shape_mismatch");
}

TEST(Ah5, ReplacesDatasetWithSameName) {
  Ah5File f;
  ASSERT_TRUE(f.add_dataset({"x", {2}, {1.0f, 2.0f}}).ok());
  ASSERT_TRUE(f.add_dataset({"x", {3}, {1.0f, 2.0f, 3.0f}}).ok());
  EXPECT_EQ(f.dataset_names().size(), 1u);
  EXPECT_EQ(f.dataset("x")->values.size(), 3u);
}

TEST(Ah5, CorruptionDetected) {
  Ah5File f;
  f.set_attr("k", "v");
  ASSERT_TRUE(f.add_dataset({"d", {2}, {1.0f, 2.0f}}).ok());
  auto bytes = f.serialize();
  bytes[bytes.size() / 2] ^= 0xFF;  // flip a payload bit
  auto back = Ah5File::deserialize(bytes);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.error().code, "checksum_mismatch");
}

TEST(Ah5, ByteSizeMatchesSerialized) {
  Ah5File f;
  f.set_attr("scan_id", "abc");
  ASSERT_TRUE(f.add_dataset({"d", {3, 3}, std::vector<float>(9, 1.0f)}).ok());
  EXPECT_EQ(f.byte_size(), f.serialize().size());
}

TEST(Ah5, FileRoundTrip) {
  TempDir tmp;
  Ah5File f;
  f.set_attr("scan_id", "xyz");
  ASSERT_TRUE(f.add_dataset({"d", {4}, {1, 2, 3, 4}}).ok());
  const std::string path = (tmp.path / "scan.ah5").string();
  ASSERT_TRUE(f.write_file(path).ok());
  auto back = Ah5File::read_file(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().attr("scan_id").value(), "xyz");
}

TEST(Tiff, RoundTripPreservesPixels) {
  TempDir tmp;
  tomo::Image img = tomo::shepp_logan(32);
  const std::string path = (tmp.path / "slice.tif").string();
  ASSERT_TRUE(write_tiff(path, img).ok());
  auto back = read_tiff(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().ny(), 32u);
  EXPECT_EQ(back.value().nx(), 32u);
  EXPECT_DOUBLE_EQ(tomo::rmse(img, back.value()), 0.0);
}

TEST(Tiff, RejectsGarbage) {
  TempDir tmp;
  const std::string path = (tmp.path / "bad.tif").string();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("not a tiff at all", f);
  std::fclose(f);
  EXPECT_FALSE(read_tiff(path).ok());
}

TEST(Tiff, StackWritesAllSlices) {
  TempDir tmp;
  tomo::Volume vol = tomo::shepp_logan_3d(16);
  auto n = write_tiff_stack((tmp.path / "stack").string(), vol);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 16u);
  auto back = read_tiff((tmp.path / "stack/slice_0008.tif").string());
  ASSERT_TRUE(back.ok());
  EXPECT_DOUBLE_EQ(tomo::rmse(vol.slice_image(8), back.value()), 0.0);
}

TEST(Multiscale, Downsample2Averages) {
  tomo::Volume v(2, 2, 2);
  float val = 0.0f;
  for (std::size_t z = 0; z < 2; ++z) {
    for (std::size_t y = 0; y < 2; ++y) {
      for (std::size_t x = 0; x < 2; ++x) v.at(z, y, x) = val++;
    }
  }
  tomo::Volume d = downsample2(v);
  EXPECT_EQ(d.nz(), 1u);
  EXPECT_FLOAT_EQ(d.at(0, 0, 0), 3.5f);  // mean of 0..7
}

TEST(Multiscale, OddSizesHandled) {
  tomo::Volume v(5, 5, 5, 2.0f);
  tomo::Volume d = downsample2(v);
  EXPECT_EQ(d.nz(), 3u);
  for (float p : d.span()) EXPECT_FLOAT_EQ(p, 2.0f);
}

TEST(Multiscale, PyramidLevels) {
  tomo::Volume v = tomo::shepp_logan_3d(32);
  auto ms = MultiscaleVolume::build(v, 4, 8);
  EXPECT_EQ(ms.n_levels(), 4u);
  EXPECT_EQ(ms.level(0).nz(), 32u);
  EXPECT_EQ(ms.level(1).nz(), 16u);
  EXPECT_EQ(ms.level(3).nz(), 4u);
  // Mean intensity is preserved by mean-downsampling.
  auto mean = [](const tomo::Volume& vol) {
    double acc = 0.0;
    for (float p : vol.span()) acc += p;
    return acc / double(vol.size());
  };
  EXPECT_NEAR(mean(ms.level(0)), mean(ms.level(3)), 1e-3);
}

TEST(Multiscale, ChunkExtraction) {
  tomo::Volume v(16, 16, 16);
  for (std::size_t z = 0; z < 16; ++z) {
    for (std::size_t y = 0; y < 16; ++y) {
      for (std::size_t x = 0; x < 16; ++x) {
        v.at(z, y, x) = float(z * 256 + y * 16 + x);
      }
    }
  }
  auto ms = MultiscaleVolume::build(v, 1, 8);
  auto grid = ms.chunk_grid(0);
  EXPECT_EQ(grid.z, 2u);
  auto chunk = ms.chunk(0, {1, 0, 1});
  ASSERT_TRUE(chunk.ok());
  EXPECT_FLOAT_EQ(chunk.value().at(0, 0, 0), v.at(8, 0, 8));
  EXPECT_FALSE(ms.chunk(0, {2, 0, 0}).ok());
}

TEST(Multiscale, SliceAxes) {
  tomo::Volume v = tomo::shepp_logan_3d(16);
  auto ms = MultiscaleVolume::build(v, 2, 8);
  auto xy = ms.slice(0, 0, 8);
  ASSERT_TRUE(xy.ok());
  EXPECT_DOUBLE_EQ(tomo::rmse(xy.value(), v.slice_image(8)), 0.0);

  auto xz = ms.slice(0, 1, 8);
  ASSERT_TRUE(xz.ok());
  EXPECT_FLOAT_EQ(xz.value().at(3, 5), v.at(3, 8, 5));

  auto yz = ms.slice(0, 2, 8);
  ASSERT_TRUE(yz.ok());
  EXPECT_FLOAT_EQ(yz.value().at(3, 5), v.at(3, 5, 8));

  EXPECT_FALSE(ms.slice(5, 0, 0).ok());
  EXPECT_FALSE(ms.slice(0, 3, 0).ok());
  EXPECT_FALSE(ms.slice(0, 0, 99).ok());
}

TEST(Multiscale, TotalBytesSumsLevels) {
  tomo::Volume v(8, 8, 8);
  auto ms = MultiscaleVolume::build(v, 2, 4);
  EXPECT_EQ(ms.total_bytes(), Bytes(8 * 8 * 8 + 4 * 4 * 4) * 4);
}

TEST(Multiscale, ByteHelpersMatchMaterializedSizes) {
  tomo::Volume v(16, 12, 8);
  auto ms = MultiscaleVolume::build(v, 2, 4);

  // chunk_bytes reports the padded chunk footprint actually materialized.
  auto chunk = ms.chunk(0, {0, 0, 0});
  ASSERT_TRUE(chunk.ok());
  EXPECT_EQ(ms.chunk_bytes(0), Bytes(chunk.value().size()) * sizeof(float));

  // slice_bytes agrees with the rendered image on every axis and level.
  for (std::size_t level = 0; level < ms.n_levels(); ++level) {
    for (int axis = 0; axis < 3; ++axis) {
      auto img = ms.slice(level, axis, 0);
      ASSERT_TRUE(img.ok()) << level << "/" << axis;
      EXPECT_EQ(ms.slice_bytes(level, axis),
                Bytes(img.value().size()) * sizeof(float))
          << level << "/" << axis;
    }
  }

  // Out-of-range queries report zero rather than asserting.
  EXPECT_EQ(ms.chunk_bytes(9), 0u);
  EXPECT_EQ(ms.slice_bytes(9, 0), 0u);
  EXPECT_EQ(ms.slice_bytes(0, 7), 0u);
}

}  // namespace
}  // namespace alsflow::data
