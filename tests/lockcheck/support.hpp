// Minimal stand-ins so the lockcheck corpus parses standalone under both
// frontends (token and libclang) without pulling in the real headers.
// The rank names and values mirror src/common/lock_rank.hpp (the tool
// loads the authoritative table from the --root tree; this copy only
// keeps libclang's AST well-formed).
#pragma once

#include <functional>
#include <string>

#ifndef ALSFLOW_REQUIRES
#define ALSFLOW_REQUIRES(...)
#endif

namespace alsflow {

enum class LockRank : int {
  kLogSink = 110,
  kMetrics = 220,
  kTransferService = 410,
  kServeTicket = 540,
  kServeFrontend = 550,
  kHealthMonitor = 620,
};

class Mutex {
 public:
  Mutex() = default;
  Mutex(LockRank rank, const char* name);
  void lock();
  void unlock();
  bool try_lock();
};

class LockGuard {
 public:
  explicit LockGuard(Mutex& m);
};

class UniqueLock {
 public:
  explicit UniqueLock(Mutex& m);
  void lock();
  void unlock();
};

namespace telemetry {
class Counter {
 public:
  void add(double v = 1.0);
};
class Gauge {
 public:
  void set(double v);
};
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
};
class Telemetry {
 public:
  MetricsRegistry& metrics();
};
Telemetry& global();
}  // namespace telemetry

}  // namespace alsflow
