// Seeded violations: a lock-order cycle between two services plus the
// rank inversions that create it. Mirrors the classic deadlock shape —
// one path locks transfer-then-monitor, the other monitor-then-transfer.
#include "support.hpp"

namespace alsflow {

class MonitorSide;

class TransferSide {
 public:
  // transfer (410) then monitor (620): ascending ranks — the runtime
  // tracker aborts here, and statically this is half of the cycle.
  void record(MonitorSide& mon);

  void poke() { LockGuard g(mu_); }

  Mutex mu_{LockRank::kTransferService, "transfer.service"};
};

class MonitorSide {
 public:
  // monitor (620) then transfer (410): descending, legal on its own —
  // but combined with record() above it closes the cycle.
  void sweep(TransferSide& xfer) {
    LockGuard g(m_);
    LockGuard h(xfer.mu_);  // lockcheck:expect lock-cycle
  }

  Mutex m_{LockRank::kHealthMonitor, "monitor.health"};
};

void TransferSide::record(MonitorSide& mon) {
  LockGuard g(mu_);
  LockGuard h(mon.m_);  // lockcheck:expect rank-inversion
}

// Recursive acquisition: same mutex taken twice on one thread. The
// runtime tracker aborts (alsflow::Mutex is non-recursive); statically
// it is a rank self-inversion.
class Reentrant {
 public:
  void outer() {
    LockGuard g(m_);
    inner();  // lockcheck:expect rank-inversion
  }
  void inner() { LockGuard g(m_); }

  Mutex m_{LockRank::kServeFrontend, "serve.frontend"};
};

}  // namespace alsflow
