// Clean control: the hoisted/ranked patterns the fixed tree uses. Every
// rule must stay silent here — this file guards against over-firing.
#include "support.hpp"

namespace alsflow {

struct Ticket {
  void fulfill(int code);
};

class Server {
 public:
  // Strict rank descent: outer monitor-layer lock, inner serve lock.
  void descend(Server& other) {
    LockGuard g(high_);
    LockGuard h(mu_);
  }

  // Callback hoisted: copy under the lock, invoke after release.
  void notify() {
    std::function<void()> cb;
    {
      LockGuard g(mu_);
      cb = on_done_;
    }
    cb();
  }

  // Completion fulfilled outside the critical section.
  void finish(Ticket* t) {
    bool ok = false;
    {
      LockGuard g(mu_);
      ok = depth_ > 0;
    }
    if (ok) t->fulfill(0);
  }

  // Emission hoisted: record the value under the lock, emit after.
  void depth_metric() {
    double depth = 0.0;
    {
      LockGuard g(mu_);
      depth = double(depth_);
    }
    telemetry::global().metrics().gauge("depth").set(depth);
  }

  // A *_locked helper with an explicit contract acquires nothing new.
  void drain() {
    LockGuard g(mu_);
    drain_locked();
  }
  void drain_locked() ALSFLOW_REQUIRES(mu_) { --depth_; }

 private:
  Mutex high_{LockRank::kHealthMonitor, "monitor.health"};
  Mutex mu_{LockRank::kServeFrontend, "serve.frontend"};
  std::function<void()> on_done_;
  int depth_ = 0;
};

}  // namespace alsflow
