// Seeded violation: an alsflow::Mutex declared without a LockRank. The
// runtime tracker skips unranked mutexes entirely, so every production
// mutex must carry a rank (and a name for the abort witness).
#include "support.hpp"

namespace alsflow {

class Orphan {
 public:
  void touch() { LockGuard g(m_); }

 private:
  Mutex m_;  // lockcheck:expect unranked-mutex
};

}  // namespace alsflow
