// Seeded violations: user code and telemetry invoked while a lock is
// held. Mirrors the defect shapes lockcheck was built to catch (the
// pre-fix log sink, watermark probes, and serve gauge updates).
#include "support.hpp"

namespace alsflow {

struct Ticket {
  void fulfill(int code);
};

// Free helper whose body emits: callers holding a lock inherit the
// emission transitively through the call-graph summaries.
inline void bump_depth_gauge(double depth) {
  telemetry::global().metrics().gauge("depth").set(depth);
}

class Server {
 public:
  void finish(Ticket* t) {
    LockGuard g(mu_);
    t->fulfill(0);  // lockcheck:expect callback-under-lock
  }

  void notify() {
    LockGuard g(mu_);
    on_done_();  // lockcheck:expect callback-under-lock
  }

  void account() {
    LockGuard g(mu_);
    telemetry::global().metrics().counter("requests").add();  // lockcheck:expect emit-under-lock
  }

  void depth_metric() {
    LockGuard g(mu_);
    bump_depth_gauge(double(depth_));  // lockcheck:expect emit-under-lock
  }

  // Held via the REQUIRES contract rather than a guard in this body:
  // still a callback under the lock.
  void poke_locked() ALSFLOW_REQUIRES(mu_) {
    on_done_();  // lockcheck:expect callback-under-lock
  }

 private:
  Mutex mu_{LockRank::kServeFrontend, "serve.frontend"};
  std::function<void()> on_done_;
  int depth_ = 0;
};

}  // namespace alsflow
