// Federated scheduler suite (DESIGN.md §17).
//
// Three layers, matching the subsystem's contracts:
//   policy units     — place() is a pure function of (scan, snapshot), so
//                      each decision rule is pinned against hand-built
//                      snapshots: rotation, cost-model ordering, blackout
//                      unreachability, sick-site avoidance, deadline-only
//                      hedging.
//   fleet campaigns  — a ≥1000-scan, 8-beamline campaign with dynamic
//                      placement completes with zero lost scans; a
//                      mid-campaign facility blackout still loses nothing
//                      (failover resubmission rides the idempotency
//                      ledger) and the whole faulted campaign is
//                      byte-identical across runs (the digest pins it).
//   merged queries   — the sharded Table-2 path over per-beamline run
//                      databases reproduces what one unsharded database
//                      over the same runs reports, exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "chaos/scenario.hpp"
#include "common/units.hpp"
#include "flow/run_db.hpp"
#include "hpc/cloud.hpp"
#include "pipeline/facility.hpp"
#include "sim/engine.hpp"
#include "sched/campaign.hpp"
#include "sched/directory.hpp"
#include "sched/fleet.hpp"
#include "sched/policy.hpp"
#include "sched/scheduler.hpp"

namespace alsflow::sched {
namespace {

// ---------------------------------------------------------------------------
// Policy units
// ---------------------------------------------------------------------------

FacilityState make_state(const std::string& name, Seconds queue_wait_p50,
                         Seconds exec_mean, std::size_t inflight,
                         double capacity) {
  FacilityState s;
  s.name = name;
  s.flow_name = "recon_" + name;
  s.available = true;
  s.health = 1.0;
  s.queue.queue_wait_p50 = queue_wait_p50;
  s.queue.exec_mean = exec_mean;
  s.queue.completed = 1;
  s.has_link = true;
  s.link_bps = gbps(10.0);
  s.link_latency = 0.03;
  s.capacity_hint = capacity;
  s.inflight_placements = inflight;
  return s;
}

ScanRequest small_request(Seconds deadline = 0.0) {
  ScanRequest r;
  r.scan_id = "scan-unit";
  r.raw_bytes = Bytes(1) << 30;  // 1 GiB out
  r.recon_bytes = Bytes(1) << 30;
  r.nz = 512;
  r.n = 1024;
  r.deadline = deadline;
  return r;
}

TEST(RoundRobinPolicy, RotatesOverAvailableSitesOnly) {
  RoundRobinPolicy policy;
  std::vector<FacilityState> snap = {make_state("nersc", 10, 100, 0, 8),
                                     make_state("alcf", 10, 100, 0, 6),
                                     make_state("cloud", 10, 100, 0, 16)};
  snap[1].available = false;  // alcf dark: rotation must skip it

  std::vector<std::string> picks;
  for (int i = 0; i < 4; ++i) {
    picks.push_back(policy.place(small_request(), snap).primary);
  }
  EXPECT_EQ(picks,
            (std::vector<std::string>{"nersc", "cloud", "nersc", "cloud"}));
}

TEST(RoundRobinPolicy, NothingAvailablePlacesNothing) {
  RoundRobinPolicy policy;
  std::vector<FacilityState> snap = {make_state("nersc", 0, 0, 0, 1)};
  snap[0].available = false;
  EXPECT_EQ(policy.place(small_request(), snap).primary, "");
  EXPECT_EQ(policy.place(small_request(), {}).primary, "");
}

TEST(GreedyPolicy, PicksLowestPredictedTurnaround) {
  GreedyPolicy policy;
  // Same link and capacity; alcf has the shorter queue.
  std::vector<FacilityState> snap = {make_state("nersc", 500, 200, 0, 8),
                                     make_state("alcf", 20, 200, 0, 8)};
  Placement p = policy.place(small_request(), snap);
  EXPECT_EQ(p.primary, "alcf");
  EXPECT_EQ(p.hedge, "");  // greedy never hedges
  EXPECT_LT(policy.predicted_turnaround(small_request(), snap[1]),
            policy.predicted_turnaround(small_request(), snap[0]));
}

TEST(GreedyPolicy, CongestionSteersAwayFromBackloggedSite) {
  GreedyPolicy policy;
  // Identical sites except nersc already carries 16 in-flight placements
  // against 8 slots: join-shortest-queue must route elsewhere.
  std::vector<FacilityState> snap = {make_state("nersc", 10, 300, 16, 8),
                                     make_state("alcf", 10, 300, 0, 8)};
  EXPECT_EQ(policy.place(small_request(), snap).primary, "alcf");
}

TEST(GreedyPolicy, BlackedOutLinkIsUnreachable) {
  GreedyPolicy policy;
  // nersc is otherwise far better, but its WAN path factor is 0.
  std::vector<FacilityState> snap = {make_state("nersc", 0, 60, 0, 8),
                                     make_state("alcf", 900, 900, 4, 2)};
  snap[0].link_bps = 0.0;
  EXPECT_EQ(policy.place(small_request(), snap).primary, "alcf");
}

TEST(GreedyPolicy, SickSiteLosesToHealthyButStillPlaceable) {
  GreedyPolicy policy;
  std::vector<FacilityState> snap = {make_state("nersc", 10, 60, 0, 8),
                                     make_state("alcf", 600, 600, 0, 6)};
  snap[0].health = 0.1;  // below min_health: behind every healthy site
  EXPECT_EQ(policy.place(small_request(), snap).primary, "alcf");

  // When every site is sick the least-bad one is still used — refusing to
  // place would lose the scan.
  snap[1].health = 0.1;
  EXPECT_EQ(policy.place(small_request(), snap).primary, "nersc");
}

TEST(HedgedPolicy, HedgesOnlyDeadlineScans) {
  HedgedPolicy policy;
  std::vector<FacilityState> snap = {make_state("nersc", 10, 100, 0, 8),
                                     make_state("alcf", 50, 100, 0, 6)};
  Placement no_deadline = policy.place(small_request(0.0), snap);
  EXPECT_EQ(no_deadline.primary, "nersc");
  EXPECT_EQ(no_deadline.hedge, "");

  Placement with_deadline = policy.place(small_request(3600.0), snap);
  EXPECT_EQ(with_deadline.primary, "nersc");
  EXPECT_EQ(with_deadline.hedge, "alcf");
  EXPECT_GE(with_deadline.hedge_delay, 120.0);  // min_hedge_delay floor
}

TEST(HedgedPolicy, NoHedgeWithoutAReachableRunnerUp) {
  HedgedPolicy policy;
  std::vector<FacilityState> snap = {make_state("nersc", 10, 100, 0, 8),
                                     make_state("alcf", 10, 100, 0, 6)};
  snap[1].link_bps = 0.0;  // runner-up blacked out: hedging it is pointless
  Placement p = policy.place(small_request(3600.0), snap);
  EXPECT_EQ(p.primary, "nersc");
  EXPECT_EQ(p.hedge, "");

  Placement solo = policy.place(small_request(3600.0),
                                {make_state("nersc", 10, 100, 0, 8)});
  EXPECT_EQ(solo.primary, "nersc");
  EXPECT_EQ(solo.hedge, "");
}

TEST(PolicyFactory, ShippedNamesResolveUnknownIsNull) {
  EXPECT_NE(make_policy("round_robin"), nullptr);
  EXPECT_NE(make_policy("greedy"), nullptr);
  EXPECT_NE(make_policy("hedged"), nullptr);
  EXPECT_EQ(make_policy("static_dual"), nullptr);  // not a dynamic policy
  EXPECT_EQ(make_policy("oracle"), nullptr);
}

TEST(FacilityDirectory, InflightAccountingAndSnapshotOrder) {
  // Real adapters (the directory reads availability + queue stats straight
  // from them); the cloud adapter is the lightest to stand up.
  sim::Engine eng;
  hpc::CloudBurstAdapter adapter_a(eng, hpc::ComputeModel{});
  hpc::CloudBurstAdapter adapter_b(eng, hpc::ComputeModel{});

  FacilityDirectory dir;
  FacilityInfo a;
  a.name = "nersc";
  a.flow_name = "recon_nersc";
  a.adapter = &adapter_a;
  dir.add(std::move(a));
  FacilityInfo b;
  b.name = "alcf";
  b.flow_name = "recon_alcf";
  b.adapter = &adapter_b;
  dir.add(std::move(b));

  EXPECT_TRUE(dir.has("nersc"));
  EXPECT_FALSE(dir.has("cloud"));
  EXPECT_EQ(dir.flow_for("alcf"), "recon_alcf");
  EXPECT_EQ(dir.flow_for("cloud"), "");

  dir.note_placed("nersc");
  dir.note_placed("nersc");
  dir.note_finished("nersc");
  EXPECT_EQ(dir.inflight("nersc"), 1u);
  EXPECT_EQ(dir.inflight("alcf"), 0u);

  // Registration order is the snapshot order (deterministic tie-breaks).
  auto snap = dir.snapshot(0.0);
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].name, "nersc");
  EXPECT_EQ(snap[1].name, "alcf");
  EXPECT_EQ(snap[0].inflight_placements, 1u);
  EXPECT_FALSE(snap[0].has_link);  // no WAN path registered
}

// ---------------------------------------------------------------------------
// Facility integration: Scheduled placement mode
// ---------------------------------------------------------------------------

data::ScanMetadata facility_scan(const std::string& id) {
  data::ScanMetadata m;
  m.scan_id = id;
  m.sample_name = "sched-sample";
  m.proposal = "ALS-11532";
  m.user = "visiting-user";
  m.rows = 512;
  m.cols = 2560;
  m.n_angles = 500;
  m.bit_depth = 16;
  m.exposure_s = 0.05;
  m.energy_kev = 25.0;
  m.pixel_um = 0.65;
  return m;
}

TEST(FacilityScheduled, OneDecisionReplacesTheDualBranches) {
  pipeline::FacilityConfig cfg;
  cfg.seed = 42;
  pipeline::Facility fac(cfg);

  std::vector<sim::Future<pipeline::ScanOutcome>> futs;
  pipeline::ScanOptions options;
  options.streaming = false;
  options.archive = false;
  options.placement = pipeline::PlacementMode::Scheduled;
  for (int i = 0; i < 3; ++i) {
    fac.engine().schedule_at(double(i) * 180.0, [&fac, &futs, i, options] {
      futs.push_back(fac.process_scan(
          facility_scan("sched-scan-" + std::to_string(i)), options));
    });
  }
  fac.engine().run();

  ASSERT_EQ(futs.size(), 3u);
  for (auto& fut : futs) {
    ASSERT_TRUE(fut.done());
    const pipeline::ScanOutcome& out = fut.value();
    // Scheduled mode routes through the scheduler, not the static branches.
    EXPECT_FALSE(out.nersc.has_value());
    EXPECT_FALSE(out.alcf.has_value());
    ASSERT_TRUE(out.sched.has_value());
    EXPECT_TRUE(out.sched->completed);
    EXPECT_TRUE(fac.directory().has(out.sched->facility));
    EXPECT_GT(out.sched->turnaround(), 0.0);
  }
  EXPECT_EQ(fac.scheduler().scans_completed(), 3u);
  EXPECT_EQ(fac.scheduler().scans_lost(), 0u);
}

// ---------------------------------------------------------------------------
// Fleet campaigns
// ---------------------------------------------------------------------------

TEST(FleetCampaign, ThousandScansAcrossEightBeamlinesZeroLost) {
  FleetCampaignConfig cfg;
  cfg.beamlines = 8;
  cfg.scans_per_beamline = 130;  // 1040 offered
  cfg.policy = "greedy";
  FleetCampaignReport rep = run_fleet_campaign(cfg);

  EXPECT_EQ(rep.offered, 1040u);
  EXPECT_EQ(rep.completed, rep.offered);
  EXPECT_EQ(rep.lost, 0u);
  // Dynamic placement actually spreads load: more than one facility used.
  std::size_t used = 0, launches = 0;
  for (const auto& [facility, count] : rep.placements) {
    if (count > 0) ++used;
    launches += count;
  }
  EXPECT_GE(used, 2u);
  EXPECT_GE(launches, rep.offered);
  EXPECT_GT(rep.makespan, 0.0);
}

TEST(FleetCampaign, MidCampaignBlackoutLosesNothingAndReplaysExactly) {
  FleetCampaignConfig cfg;
  cfg.beamlines = 8;
  cfg.scans_per_beamline = 16;  // 128 offered
  cfg.policy = "greedy";
  // Burst arrivals well past fleet capacity so every site carries a queue
  // when the fault lands — the outage then strands jobs *queued* at NERSC,
  // not just the narrow window of mid-submission scans.
  cfg.scan_interval = 10.0;
  // Aggressive failover so stalled placements re-route inside the test
  // horizon.
  cfg.scheduler.failover_timeout = 600.0;
  // NERSC goes dark mid-campaign for a full hour: placements already
  // in flight there stall (an outage reads as queue wait, never failure),
  // new placements avoid it via the availability gate, and the stalled
  // ones fail over after the timeout.
  cfg.scenario = {"nersc_blackout",
                  {{chaos::FaultKind::FacilityOutage, 120.0, 3600.0, "nersc",
                    0.0}}};

  FleetCampaignReport first = run_fleet_campaign(cfg);
  EXPECT_EQ(first.offered, 128u);
  EXPECT_EQ(first.completed, first.offered);
  EXPECT_EQ(first.lost, 0u) << "a facility blackout must never lose scans";
  EXPECT_GT(first.failovers, 0u)
      << "stalled placements must have re-routed somewhere";

  // Determinism under chaos: the same seed + fault schedule reproduces the
  // campaign byte-for-byte (same winners, same turnaround bits).
  FleetCampaignReport second = run_fleet_campaign(cfg);
  EXPECT_EQ(first.digest, second.digest);
  EXPECT_EQ(first.failovers, second.failovers);
  EXPECT_EQ(first.placements, second.placements);
}

TEST(FleetCampaign, HedgedPolicyCompletesDeadlineMix) {
  FleetCampaignConfig cfg;
  cfg.beamlines = 4;
  cfg.scans_per_beamline = 24;
  cfg.policy = "hedged";
  cfg.deadline_every = 2;
  FleetCampaignReport rep = run_fleet_campaign(cfg);
  EXPECT_EQ(rep.completed, rep.offered);
  EXPECT_EQ(rep.lost, 0u);
}

// ---------------------------------------------------------------------------
// Sharded merged queries == unsharded golden
// ---------------------------------------------------------------------------

TEST(FleetMergedQueries, MatchUnshardedDatabaseExactly) {
  FleetCampaignConfig cfg;
  cfg.beamlines = 4;
  cfg.scans_per_beamline = 16;
  cfg.policy = "round_robin";  // spreads runs over every shard + facility
  FleetWorld world(cfg);
  FleetCampaignReport rep = world.run();
  ASSERT_EQ(rep.lost, 0u);

  Fleet& fleet = world.fleet();
  const std::size_t kAll = 1u << 20;  // cover every run
  for (const char* flow_name : {"recon_nersc", "recon_alcf"}) {
    // Rebuild one unsharded database holding the same completed runs, in
    // the merge's global completion order, and ask it the Table-2 query.
    std::vector<flow::FlowRunRecord> recs;
    for (const flow::RunDatabase* db : fleet.run_dbs()) {
      for (auto& rec :
           db->runs_in_state(flow_name, flow::RunState::Completed)) {
        recs.push_back(std::move(rec));
      }
    }
    ASSERT_FALSE(recs.empty()) << flow_name;
    std::sort(recs.begin(), recs.end(),
              [](const flow::FlowRunRecord& a, const flow::FlowRunRecord& b) {
                if (a.finished_at != b.finished_at) {
                  return a.finished_at < b.finished_at;
                }
                if (a.created_at != b.created_at) {
                  return a.created_at < b.created_at;
                }
                return a.id < b.id;
              });
    flow::RunDatabase golden;
    for (const auto& rec : recs) {
      const std::string id =
          golden.create_run(flow_name, rec.created_at, rec.parameters);
      golden.mark_finished(id, flow::RunState::Completed, rec.finished_at);
    }

    Summary merged = fleet.merged_duration_summary(flow_name, kAll);
    Summary single = golden.duration_summary(flow_name, kAll);
    EXPECT_EQ(merged.n, single.n);
    EXPECT_DOUBLE_EQ(merged.mean, single.mean);
    EXPECT_DOUBLE_EQ(merged.stddev, single.stddev);
    EXPECT_DOUBLE_EQ(merged.median, single.median);
    EXPECT_DOUBLE_EQ(merged.min, single.min);
    EXPECT_DOUBLE_EQ(merged.max, single.max);
    EXPECT_DOUBLE_EQ(merged.p05, single.p05);
    EXPECT_DOUBLE_EQ(merged.p95, single.p95);

    // Same for the per-task quantile query.
    std::vector<std::pair<Seconds, double>> samples;
    for (const flow::RunDatabase* db : fleet.run_dbs()) {
      for (auto& s : db->completed_task_durations(flow_name, "recon")) {
        samples.push_back(s);
      }
    }
    ASSERT_FALSE(samples.empty()) << flow_name;
    std::sort(samples.begin(), samples.end());
    flow::RunDatabase task_golden;
    for (const auto& [finished_at, duration] : samples) {
      flow::TaskRunRecord t;
      t.flow_run_id = "golden-run";
      t.task_name = "recon";
      t.state = flow::RunState::Completed;
      t.attempts = 1;
      t.started_at = finished_at - duration;
      t.finished_at = finished_at;
      task_golden.record_task(std::move(t));
    }
    auto merged_q =
        fleet.merged_task_duration_quantiles(flow_name, "recon", kAll);
    auto single_q = task_golden.task_duration_quantiles("", "recon", kAll);
    EXPECT_EQ(merged_q.n, single_q.n);
    EXPECT_DOUBLE_EQ(merged_q.p50, single_q.p50);
    EXPECT_DOUBLE_EQ(merged_q.p95, single_q.p95);
    EXPECT_DOUBLE_EQ(merged_q.p99, single_q.p99);
  }
}

}  // namespace
}  // namespace alsflow::sched
