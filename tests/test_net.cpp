#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/link.hpp"
#include "net/pubsub.hpp"

namespace alsflow::net {
namespace {

using sim::Engine;
using sim::Proc;

Proc send_and_record(Engine& eng, Link& link, Bytes bytes,
                     std::vector<double>& finished_at) {
  co_await link.send(bytes);
  finished_at.push_back(eng.now());
}

TEST(Link, SingleTransferTakesSizeOverBandwidth) {
  Engine eng;
  Link link(eng, "esnet", 100.0);  // 100 B/s
  std::vector<double> done;
  send_and_record(eng, link, 1000, done).detach();
  eng.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_NEAR(done[0], 10.0, 1e-6);
}

TEST(Link, LatencyAdds) {
  Engine eng;
  Link link(eng, "esnet", 100.0, 2.5);
  std::vector<double> done;
  send_and_record(eng, link, 1000, done).detach();
  eng.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_NEAR(done[0], 12.5, 1e-6);
}

TEST(Link, ZeroBytesIsLatencyOnly) {
  Engine eng;
  Link link(eng, "esnet", 100.0, 3.0);
  std::vector<double> done;
  send_and_record(eng, link, 0, done).detach();
  eng.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_NEAR(done[0], 3.0, 1e-6);
}

TEST(Link, TwoConcurrentTransfersShareBandwidth) {
  Engine eng;
  Link link(eng, "esnet", 100.0);
  std::vector<double> done;
  // Both start at t=0; each gets 50 B/s while both are active.
  send_and_record(eng, link, 1000, done).detach();
  send_and_record(eng, link, 1000, done).detach();
  eng.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 20.0, 1e-6);
  EXPECT_NEAR(done[1], 20.0, 1e-6);
}

TEST(Link, UnequalTransfersProcessorSharing) {
  Engine eng;
  Link link(eng, "l", 100.0);
  std::vector<double> done_small, done_big;
  send_and_record(eng, link, 500, done_small).detach();
  send_and_record(eng, link, 1500, done_big).detach();
  eng.run();
  // Phase 1: both at 50 B/s; small (500 B) finishes at t=10.
  // Phase 2: big has 1000 B left at 100 B/s -> finishes at t=20.
  ASSERT_EQ(done_small.size(), 1u);
  ASSERT_EQ(done_big.size(), 1u);
  EXPECT_NEAR(done_small[0], 10.0, 1e-6);
  EXPECT_NEAR(done_big[0], 20.0, 1e-6);
}

Proc staggered_sender(Engine& eng, Link& link, Seconds start, Bytes bytes,
                      std::vector<double>& done) {
  co_await sim::delay(eng, start);
  co_await link.send(bytes);
  done.push_back(eng.now());
}

TEST(Link, LateArrivalSlowsExisting) {
  Engine eng;
  Link link(eng, "l", 100.0);
  std::vector<double> first, second;
  staggered_sender(eng, link, 0.0, 1000, first).detach();
  staggered_sender(eng, link, 5.0, 1000, second).detach();
  eng.run();
  // First: 500 B alone (t=0..5), then shares: 500 B at 50 B/s -> t=15.
  // Second: 500 B at 50 B/s (t=5..15), then alone: 500 B at 100 B/s -> t=20.
  EXPECT_NEAR(first[0], 15.0, 1e-6);
  EXPECT_NEAR(second[0], 20.0, 1e-6);
}

TEST(Link, TracksTotalsAndThroughput) {
  Engine eng;
  Link link(eng, "l", 100.0);
  std::vector<double> done;
  send_and_record(eng, link, 1000, done).detach();
  eng.run();
  EXPECT_EQ(link.total_bytes_sent(), 1000u);
  EXPECT_NEAR(link.mean_throughput(), 100.0, 1e-6);
  EXPECT_EQ(link.active_transfers(), 0u);
}

TEST(Channel, DeliversToAllSubscribers) {
  Engine eng;
  Channel<int> ch(eng, "ioc");
  auto s1 = ch.subscribe();
  auto s2 = ch.subscribe();
  ch.publish(42);
  eng.run();
  EXPECT_EQ(s1->queue().size(), 1u);
  EXPECT_EQ(s2->queue().size(), 1u);
  EXPECT_EQ(*s1->queue().try_pop(), 42);
  EXPECT_EQ(ch.published(), 1u);
}

TEST(Channel, LinkDelaysDelivery) {
  Engine eng;
  Link slow(eng, "esnet", 100.0, 1.0);
  Channel<int> ch(eng, "ioc");
  auto local = ch.subscribe();                  // instant
  auto remote = ch.subscribe(&slow, 200);       // 2s transfer + 1s latency

  ch.publish(7);
  EXPECT_EQ(local->queue().size(), 1u);
  EXPECT_EQ(remote->queue().size(), 0u);
  eng.run_until(2.9);
  EXPECT_EQ(remote->queue().size(), 0u);
  eng.run_until(3.1);
  EXPECT_EQ(remote->queue().size(), 1u);
}

TEST(Channel, BoundedQueueDropsOldest) {
  Engine eng;
  Channel<int> ch(eng, "ioc");
  auto sub = ch.subscribe(nullptr, 0, /*max_depth=*/2);
  ch.publish(1);
  ch.publish(2);
  ch.publish(3);
  EXPECT_EQ(sub->overruns(), 1u);
  EXPECT_EQ(*sub->queue().try_pop(), 2);  // 1 was dropped
  EXPECT_EQ(*sub->queue().try_pop(), 3);
}

Proc consume_n(Engine& eng, std::shared_ptr<Subscription<int>> sub, int n,
               std::vector<int>& out) {
  (void)eng;
  for (int i = 0; i < n; ++i) out.push_back(co_await sub->queue().pop());
}

TEST(MirrorServer, RepublishesInOrder) {
  Engine eng;
  Channel<int> ioc(eng, "ioc");
  MirrorServer<int> mirror(eng, ioc, "mirror");
  auto writer = mirror.channel().subscribe();
  auto streamer = mirror.channel().subscribe();

  std::vector<int> got_writer, got_streamer;
  consume_n(eng, writer, 3, got_writer).detach();
  consume_n(eng, streamer, 3, got_streamer).detach();

  ioc.publish(10);
  ioc.publish(11);
  ioc.publish(12);
  eng.run();

  EXPECT_EQ(got_writer, (std::vector<int>{10, 11, 12}));
  EXPECT_EQ(got_streamer, (std::vector<int>{10, 11, 12}));
  EXPECT_EQ(mirror.forwarded(), 3u);
  // The IOC channel itself has exactly one subscriber: the mirror.
  EXPECT_EQ(ioc.subscriber_count(), 1u);
}

}  // namespace
}  // namespace alsflow::net
