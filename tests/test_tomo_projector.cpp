#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "tomo/phantom.hpp"
#include "tomo/projector.hpp"

namespace alsflow::tomo {
namespace {

TEST(ForwardProject, MatchesAnalyticSinogram) {
  // The numeric pixel-driven projector must approximate the analytic Radon
  // transform of the phantom ellipses.
  const std::size_t n = 128;
  Geometry geo{90, n, -1.0};
  Image img = shepp_logan(n);
  Image numeric = forward_project(img, geo);
  Image analytic = analytic_sinogram(shepp_logan_ellipses(), geo);

  double err = 0.0, ref = 0.0;
  for (std::size_t i = 0; i < numeric.size(); ++i) {
    const double d = numeric.data()[i] - analytic.data()[i];
    err += d * d;
    ref += analytic.data()[i] * analytic.data()[i];
  }
  // Relative L2 error below 5% (discretization of a binary-edge phantom).
  EXPECT_LT(std::sqrt(err / ref), 0.05);
}

TEST(ForwardProject, MassConservedPerAngle) {
  const std::size_t n = 64;
  Geometry geo{32, n, -1.0};
  Image img = shepp_logan(n);
  double pixel_mass = 0.0;
  const double h = 2.0 / double(n);
  for (float v : img.span()) pixel_mass += double(v) * h * h;

  Image sino = forward_project(img, geo);
  const double spacing = 2.0 / double(geo.n_det);
  for (std::size_t a = 0; a < geo.n_angles; ++a) {
    double mass = 0.0;
    for (std::size_t t = 0; t < geo.n_det; ++t) {
      mass += sino.at(a, t) * spacing;
    }
    EXPECT_NEAR(mass, pixel_mass, pixel_mass * 1e-3) << "angle " << a;
  }
}

TEST(ForwardProject, EmptyImageGivesZeroSinogram) {
  Geometry geo{16, 32, -1.0};
  Image img(32, 32, 0.0f);
  Image sino = forward_project(img, geo);
  for (float v : sino.span()) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(ForwardProject, CenteredDotProjectsToCenterBin) {
  const std::size_t n = 65;  // odd so one pixel sits at the exact center
  Geometry geo{8, 64, -1.0};
  Image img(n, n, 0.0f);
  img.at(32, 32) = 1.0f;
  Image sino = forward_project(img, geo);
  const double center = geo.center_or_default();
  for (std::size_t a = 0; a < geo.n_angles; ++a) {
    // Find the sinogram peak; it must fall within one bin of the center.
    std::size_t peak = 0;
    for (std::size_t t = 1; t < geo.n_det; ++t) {
      if (sino.at(a, t) > sino.at(a, peak)) peak = t;
    }
    EXPECT_NEAR(double(peak), center, 1.0) << "angle " << a;
  }
}

TEST(ForwardProject, OffCenterDotTracesSinusoid) {
  const std::size_t n = 64;
  Geometry geo{64, 64, -1.0};
  Image img(n, n, 0.0f);
  // Dot at u = 0.5, v = 0 -> t(theta) = 0.5*cos(theta) in normalized units.
  img.at(32, 48) = 1.0f;
  Image sino = forward_project(img, geo);
  const double center = geo.center_or_default();
  const double spacing = 2.0 / double(geo.n_det);
  for (std::size_t a = 0; a < geo.n_angles; a += 8) {
    std::size_t peak = 0;
    for (std::size_t t = 1; t < geo.n_det; ++t) {
      if (sino.at(a, t) > sino.at(a, peak)) peak = t;
    }
    const double u = 2.0 * (48.0 + 0.5) / 64.0 - 1.0;
    const double expected = u * std::cos(geo.angle(a)) / spacing + center;
    EXPECT_NEAR(double(peak), expected, 1.5) << "angle " << a;
  }
}

TEST(Adjoint, DotProductIdentity) {
  // <A x, y> == <x, A^T y> for random x, y — the property SIRT/MLEM rely on.
  const std::size_t n = 32;
  Geometry geo{24, 40, -1.0};
  Rng rng(9);

  Image x(n, n);
  for (auto& p : x.span()) p = float(rng.uniform(0, 1));
  Image y(geo.n_angles, geo.n_det);
  for (auto& p : y.span()) p = float(rng.uniform(0, 1));

  Image ax = forward_project(x, geo);
  Image aty = back_project_adjoint(y, geo, n);

  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < ax.size(); ++i) {
    lhs += double(ax.data()[i]) * double(y.data()[i]);
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    rhs += double(x.data()[i]) * double(aty.data()[i]);
  }
  EXPECT_NEAR(lhs, rhs, 1e-3 * std::abs(lhs));
}

TEST(Adjoint, DotProductIdentityOffCenterRotationAxis) {
  const std::size_t n = 24;
  Geometry geo{16, 32, 13.25};  // deliberately off-center axis
  Rng rng(10);
  Image x(n, n);
  for (auto& p : x.span()) p = float(rng.uniform(0, 1));
  Image y(geo.n_angles, geo.n_det);
  for (auto& p : y.span()) p = float(rng.uniform(0, 1));
  Image ax = forward_project(x, geo);
  Image aty = back_project_adjoint(y, geo, n);
  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < ax.size(); ++i) {
    lhs += double(ax.data()[i]) * double(y.data()[i]);
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    rhs += double(x.data()[i]) * double(aty.data()[i]);
  }
  EXPECT_NEAR(lhs, rhs, 1e-3 * std::abs(lhs));
}

TEST(FbpAccumulateRow, SumOfRowsMatchesFullBackprojection) {
  const std::size_t n = 48;
  Geometry geo{36, n, -1.0};
  Rng rng(11);
  Image filtered(geo.n_angles, geo.n_det);
  for (auto& p : filtered.span()) p = float(rng.uniform(-1, 1));

  Image full = fbp_backproject(filtered, geo, n);

  Image accum(n, n, 0.0f);
  for (std::size_t a = 0; a < geo.n_angles; ++a) {
    fbp_accumulate_row(accum, filtered.row(a), geo, a);
  }
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_NEAR(accum.data()[i], full.data()[i], 1e-3f);
  }
}

TEST(FbpBackprojectPoints, MatchesPlaneReconstruction) {
  const std::size_t n = 48;
  Geometry geo{36, n, -1.0};
  Rng rng(12);
  Image filtered(geo.n_angles, geo.n_det);
  for (auto& p : filtered.span()) p = float(rng.uniform(-1, 1));

  Image plane = fbp_backproject(filtered, geo, n);

  // Sample the middle row of the plane via the point API.
  std::vector<double> us(n), vs(n);
  const std::size_t y = n / 2;
  for (std::size_t x = 0; x < n; ++x) {
    us[x] = 2.0 * (double(x) + 0.5) / double(n) - 1.0;
    vs[x] = 1.0 - 2.0 * (double(y) + 0.5) / double(n);
  }
  std::vector<float> line(n);
  fbp_backproject_points(filtered, geo, us, vs, line);
  for (std::size_t x = 0; x < n; ++x) {
    EXPECT_NEAR(line[x], plane.at(y, x), 1e-4f);
  }
}

}  // namespace
}  // namespace alsflow::tomo
