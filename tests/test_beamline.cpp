#include <gtest/gtest.h>

#include "beamline/detector.hpp"
#include "beamline/file_writer.hpp"
#include "net/pubsub.hpp"
#include "storage/endpoint.hpp"
#include "tomo/metrics.hpp"
#include "tomo/phantom.hpp"
#include "tomo/recon.hpp"
#include "tomo/streaming.hpp"

namespace alsflow::beamline {
namespace {

data::ScanMetadata small_scan(std::size_t n_angles = 128,
                              std::size_t rows = 32, std::size_t cols = 32) {
  data::ScanMetadata m;
  m.scan_id = "test-scan";
  m.sample_name = "phantom";
  m.proposal = "P-1";
  m.user = "tester";
  m.n_angles = n_angles;
  m.rows = rows;
  m.cols = cols;
  m.bit_depth = 16;
  m.exposure_s = 0.05;
  m.energy_kev = 20.0;
  m.pixel_um = 0.65;
  return m;
}

TEST(Detector, AcquisitionTimingMatchesFrameRate) {
  sim::Engine eng;
  Detector::Config cfg;
  cfg.frame_rate = 10.0;
  cfg.batch_size = 16;
  Detector det(eng, cfg);
  auto fut = det.acquire(small_scan(100));
  eng.run();
  ASSERT_TRUE(fut.done());
  // 100 frames at 10 fps = 10 s.
  EXPECT_NEAR(fut.value().acquired_at, 10.0, 1e-6);
  EXPECT_EQ(det.scans_acquired(), 1u);
}

TEST(Detector, BatchesCoverAllFrames) {
  sim::Engine eng;
  Detector::Config cfg;
  cfg.batch_size = 30;  // does not divide 100
  Detector det(eng, cfg);
  auto sub = det.ioc_channel().subscribe();
  auto fut = det.acquire(small_scan(100));
  eng.run();

  std::size_t frames = 0, batches = 0;
  bool saw_last = false;
  while (auto batch = sub->queue().try_pop()) {
    frames += batch->count;
    ++batches;
    if (batch->last_of_scan) saw_last = true;
  }
  EXPECT_EQ(frames, 100u);
  EXPECT_EQ(batches, 4u);  // 30+30+30+10
  EXPECT_TRUE(saw_last);
}

TEST(Detector, BatchBytesMatchFrameSize) {
  sim::Engine eng;
  Detector det(eng, Detector::Config{});
  auto sub = det.ioc_channel().subscribe();
  auto scan = small_scan(64, 16, 24);
  auto fut = det.acquire(scan);
  eng.run();
  Bytes total = 0;
  while (auto batch = sub->queue().try_pop()) total += batch->bytes;
  EXPECT_EQ(total, Bytes(64) * 16 * 24 * 2);  // 16-bit pixels
}

TEST(FileWriter, WritesAfterLastFrame) {
  sim::Engine eng;
  Detector det(eng, Detector::Config{});
  net::MirrorServer<FrameBatch> mirror(eng, det.ioc_channel(), "mirror");
  storage::StorageEndpoint server("als-acq", storage::Tier::BeamlineLocal,
                                  TiB);
  FileWriterService writer(eng, mirror.channel(), server);

  auto scan = small_scan();
  std::string completed_path;
  writer.on_complete([&](const data::ScanMetadata&, const std::string& p) {
    completed_path = p;
  });
  writer.begin_scan(scan);
  auto fut = det.acquire(scan);
  eng.run();

  EXPECT_EQ(writer.scans_written(), 1u);
  EXPECT_EQ(completed_path, "/raw/test-scan.ah5");
  auto info = server.stat("/raw/test-scan.ah5");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().size, scan.raw_bytes());
  EXPECT_EQ(writer.validation_errors(), 0u);
}

TEST(FileWriter, RejectsUnannouncedScan) {
  sim::Engine eng;
  Detector det(eng, Detector::Config{});
  net::MirrorServer<FrameBatch> mirror(eng, det.ioc_channel(), "mirror");
  storage::StorageEndpoint server("s", storage::Tier::BeamlineLocal, TiB);
  FileWriterService writer(eng, mirror.channel(), server);

  auto fut = det.acquire(small_scan());  // no begin_scan()
  eng.run();
  EXPECT_EQ(writer.scans_written(), 0u);
  EXPECT_GT(writer.validation_errors(), 0u);
}

TEST(FileWriter, RejectsInvalidMetadata) {
  sim::Engine eng;
  Detector det(eng, Detector::Config{});
  net::MirrorServer<FrameBatch> mirror(eng, det.ioc_channel(), "mirror");
  storage::StorageEndpoint server("s", storage::Tier::BeamlineLocal, TiB);
  FileWriterService writer(eng, mirror.channel(), server);

  auto bad = small_scan();
  bad.n_angles = 0;  // invalid
  writer.begin_scan(bad);
  EXPECT_EQ(writer.validation_errors(), 1u);
}

TEST(FileWriter, TwoInterleavedScansBothComplete) {
  sim::Engine eng;
  // Two detectors sharing one writer channel is not physical, but
  // exercises per-scan assembly state.
  Detector det(eng, Detector::Config{});
  net::MirrorServer<FrameBatch> mirror(eng, det.ioc_channel(), "mirror");
  storage::StorageEndpoint server("s", storage::Tier::BeamlineLocal, TiB);
  FileWriterService writer(eng, mirror.channel(), server);

  auto a = small_scan();
  a.scan_id = "scan-a";
  auto b = small_scan();
  b.scan_id = "scan-b";
  writer.begin_scan(a);
  writer.begin_scan(b);
  auto fa = det.acquire(a);
  auto fb = det.acquire(b);
  eng.run();
  EXPECT_EQ(writer.scans_written(), 2u);
  EXPECT_TRUE(server.exists("/raw/scan-a.ah5"));
  EXPECT_TRUE(server.exists("/raw/scan-b.ah5"));
}

TEST(Detector, RealPixelAcquisitionReconstructs) {
  // End-to-end acquisition physics: phantom -> noisy counts -> streaming
  // reconstructor -> recognizable slice.
  sim::Engine eng;
  Detector::Config cfg;
  cfg.batch_size = 16;
  cfg.poisson_noise = true;
  Detector det(eng, cfg);

  const std::size_t n = 32;
  auto specimen = std::make_shared<tomo::Volume>(tomo::shepp_logan_3d(n));
  auto scan = small_scan(64, n, n);

  auto sub = det.ioc_channel().subscribe();
  auto fut = det.acquire_with_pixels(scan, specimen);
  eng.run();

  tomo::StreamingConfig scfg;
  scfg.geo = tomo::Geometry{scan.n_angles, n, -1.0};
  scfg.n_rows = n;
  tomo::StreamingReconstructor recon(scfg);
  recon.set_reference(det.reference_dark(scan), det.reference_flat(scan));

  while (auto batch = sub->queue().try_pop()) {
    ASSERT_TRUE(batch->pixels);
    for (std::size_t k = 0; k < batch->count; ++k) {
      recon.on_frame(batch->first_angle + k, (*batch->pixels)[k]);
    }
  }
  EXPECT_TRUE(recon.complete());
  auto preview = recon.finalize();
  EXPECT_GT(tomo::pearson_correlation(preview.xy, specimen->slice_image(n / 2)),
            0.8);
}

}  // namespace
}  // namespace alsflow::beamline
