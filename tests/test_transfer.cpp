#include <gtest/gtest.h>

#include "net/link.hpp"
#include "sim/engine.hpp"
#include "storage/endpoint.hpp"
#include "transfer/transfer_service.hpp"

namespace alsflow::transfer {
namespace {

using sim::Engine;
using storage::StorageEndpoint;
using storage::Tier;

struct World {
  Engine eng;
  StorageEndpoint beamline{"beamline", Tier::BeamlineLocal, 100 * TiB};
  StorageEndpoint cfs{"cfs", Tier::Cfs, 100 * TiB};
  net::Link esnet{eng, "esnet", gbps(10), 0.05};
  TransferService svc{eng};

  World() {
    svc.add_route("beamline", "cfs", &esnet);
    svc.add_route("cfs", "beamline", &esnet);
    // Keep deterministic timing simple in unit tests.
    svc.tuning().per_task_overhead = 1.0;
    svc.tuning().per_file_overhead = 0.0;
    svc.tuning().checksum_rate = 0.0;
    svc.tuning().retry_delay = 1.0;
  }

  TransferOutcome run(TransferSpec spec) {
    auto fut = svc.submit(std::move(spec));
    eng.run();
    return fut.value();
  }
};

TEST(Transfer, MovesFileWithChecksum) {
  World w;
  ASSERT_TRUE(w.beamline.put("/raw/s1.ah5", 20 * GB, 0xFEED, 0.0).ok());
  TransferSpec spec;
  spec.src = &w.beamline;
  spec.dst = &w.cfs;
  spec.files = {{"/raw/s1.ah5", "/als/raw/s1.ah5"}};
  auto out = w.run(std::move(spec));
  EXPECT_TRUE(out.status.ok());
  EXPECT_EQ(out.files_ok, 1u);
  EXPECT_EQ(out.bytes_moved, 20 * GB);
  auto landed = w.cfs.stat("/als/raw/s1.ah5");
  ASSERT_TRUE(landed.ok());
  EXPECT_EQ(landed.value().checksum, 0xFEEDu);
}

TEST(Transfer, DurationMatchesBandwidth) {
  World w;
  ASSERT_TRUE(w.beamline.put("/raw/s1.ah5", 25 * GB, 1, 0.0).ok());
  TransferSpec spec;
  spec.src = &w.beamline;
  spec.dst = &w.cfs;
  spec.files = {{"/raw/s1.ah5", "/x"}};
  auto out = w.run(std::move(spec));
  // 25 GB at 10 Gbps (1.25 GB/s) = 20 s + 1 s task overhead + latency.
  EXPECT_NEAR(out.duration(), 21.05, 0.1);
}

TEST(Transfer, MissingSourceFails) {
  World w;
  TransferSpec spec;
  spec.src = &w.beamline;
  spec.dst = &w.cfs;
  spec.files = {{"/raw/missing", "/x"}};
  auto out = w.run(std::move(spec));
  EXPECT_FALSE(out.status.ok());
  EXPECT_EQ(out.status.error().code, "not_found");
  EXPECT_EQ(out.files_failed, 1u);
}

TEST(Transfer, NoRouteFailsImmediately) {
  World w;
  StorageEndpoint eagle("eagle", Tier::Eagle, TiB);
  ASSERT_TRUE(w.beamline.put("/raw/a", 1, 0, 0.0).ok());
  TransferSpec spec;
  spec.src = &w.beamline;
  spec.dst = &eagle;
  spec.files = {{"/raw/a", "/x"}};
  auto out = w.run(std::move(spec));
  EXPECT_EQ(out.status.error().code, "no_route");
}

TEST(Transfer, MultiFileAggregates) {
  World w;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        w.beamline.put("/raw/f" + std::to_string(i), GB, i, 0.0).ok());
  }
  TransferSpec spec;
  spec.src = &w.beamline;
  spec.dst = &w.cfs;
  for (int i = 0; i < 5; ++i) {
    spec.files.push_back(
        {"/raw/f" + std::to_string(i), "/dst/f" + std::to_string(i)});
  }
  auto out = w.run(std::move(spec));
  EXPECT_EQ(out.files_ok, 5u);
  EXPECT_EQ(out.bytes_moved, 5 * GB);
  EXPECT_EQ(w.cfs.list("/dst/").size(), 5u);
}

TEST(Transfer, CorruptionRetriedWhenVerifying) {
  World w;
  w.svc.set_corruption_rate(0.5);
  ASSERT_TRUE(w.beamline.put("/raw/a", GB, 0x1234, 0.0).ok());
  TransferSpec spec;
  spec.src = &w.beamline;
  spec.dst = &w.cfs;
  spec.files = {{"/raw/a", "/x"}};
  spec.verify_checksum = true;
  auto out = w.run(std::move(spec));
  // With p=0.5 and 3 retries the chance of total failure is 1/16; the
  // seeded RNG makes this deterministic - assert what actually happens:
  if (out.status.ok()) {
    EXPECT_EQ(w.cfs.stat("/x").value().checksum, 0x1234u);
  } else {
    EXPECT_EQ(out.status.error().code, "retries_exhausted");
  }
}

TEST(Transfer, CorruptionAlwaysRecoveredEventually) {
  // Statistical property over many files: with verification on, every
  // *successful* file has the correct checksum.
  World w;
  w.svc.set_corruption_rate(0.3);
  TransferSpec spec;
  spec.src = &w.beamline;
  spec.dst = &w.cfs;
  for (int i = 0; i < 50; ++i) {
    std::string p = "/raw/f" + std::to_string(i);
    ASSERT_TRUE(w.beamline.put(p, MB, 1000 + std::uint64_t(i), 0.0).ok());
    spec.files.push_back({p, "/dst/f" + std::to_string(i)});
  }
  auto out = w.run(std::move(spec));
  EXPECT_GT(out.retries, 0);
  for (int i = 0; i < 50; ++i) {
    auto landed = w.cfs.stat("/dst/f" + std::to_string(i));
    if (landed.ok() && out.files_ok == 50) {
      EXPECT_EQ(landed.value().checksum, 1000 + std::uint64_t(i));
    }
  }
}

TEST(Transfer, CorruptionUndetectedWithoutVerification) {
  // The ablation: checksums off -> corrupted copies land silently.
  World w;
  w.svc.set_corruption_rate(1.0);  // every copy corrupts
  ASSERT_TRUE(w.beamline.put("/raw/a", GB, 0x1234, 0.0).ok());
  TransferSpec spec;
  spec.src = &w.beamline;
  spec.dst = &w.cfs;
  spec.files = {{"/raw/a", "/x"}};
  spec.verify_checksum = false;
  auto out = w.run(std::move(spec));
  EXPECT_TRUE(out.status.ok());  // "succeeds"...
  EXPECT_NE(w.cfs.stat("/x").value().checksum, 0x1234u);  // ...corrupted
  EXPECT_EQ(out.retries, 0);
}

TEST(Transfer, ExhaustedRetriesRemoveCorruptedDestinationCopy) {
  // Every attempt corrupts; once the retry budget is exhausted the
  // known-bad destination copy must not be left for downstream flows.
  World w;
  w.svc.set_corruption_rate(1.0);
  ASSERT_TRUE(w.beamline.put("/raw/a", GB, 0xABCD, 0.0).ok());
  TransferSpec spec;
  spec.src = &w.beamline;
  spec.dst = &w.cfs;
  spec.files = {{"/raw/a", "/x"}};
  spec.verify_checksum = true;
  auto out = w.run(std::move(spec));
  EXPECT_FALSE(out.status.ok());
  EXPECT_EQ(out.status.error().code, "retries_exhausted");
  EXPECT_EQ(out.files_failed, 1u);
  EXPECT_FALSE(w.cfs.exists("/x"));  // corrupted copy cleaned up
}

TEST(Transfer, StrandedCorruptCopySurfacesInOutcome) {
  // Retries exhausted on a corrupt copy AND the cleanup remove() fails
  // (endpoint denies removes, like a revoked collection): the outcome must
  // say a known-bad copy is stranded, not just "retries_exhausted".
  World w;
  w.svc.set_corruption_rate(1.0);
  w.cfs.deny("remove", "");
  ASSERT_TRUE(w.beamline.put("/raw/a", GB, 0xABCD, 0.0).ok());
  TransferSpec spec;
  spec.src = &w.beamline;
  spec.dst = &w.cfs;
  spec.files = {{"/raw/a", "/x"}};
  spec.verify_checksum = true;
  auto out = w.run(std::move(spec));
  EXPECT_FALSE(out.status.ok());
  EXPECT_EQ(out.status.error().code, "stranded_corrupt_copy");
  EXPECT_EQ(out.status.error().message, "/x");
  EXPECT_EQ(out.files_failed, 1u);
  EXPECT_EQ(out.files_stranded, 1u);
  EXPECT_TRUE(w.cfs.exists("/x"));  // the bad copy really is still there
}

TEST(Transfer, RetryBackoffIsExponential) {
  // With jitter off, retry waits are retry_delay * backoff^(k-1):
  // 1 + 2 + 4 = 7 s of backoff across the 3 retries.
  World w;
  w.svc.tuning().retry_jitter = 0.0;
  w.svc.set_corruption_rate(1.0);  // every attempt fails its checksum
  ASSERT_TRUE(w.beamline.put("/raw/a", GB, 0xABCD, 0.0).ok());
  TransferSpec spec;
  spec.src = &w.beamline;
  spec.dst = &w.cfs;
  spec.files = {{"/raw/a", "/x"}};
  auto out = w.run(std::move(spec));
  EXPECT_EQ(out.retries, 3);
  // 1 s task overhead + 4 sends (GB at 1.25 GB/s + 0.05 s latency = 0.85 s)
  // + backoff 1 + 2 + 4.
  EXPECT_NEAR(out.duration(), 1.0 + 4 * 0.85 + 7.0, 1e-6);
}

TEST(Transfer, RetryJitterIsSeededAndDeterministic) {
  // Same seed -> byte-identical retry timing; a different seed shifts it.
  // (This is the sim-determinism contract: jitter comes from the service's
  // seeded rng, never from wall clocks or thread scheduling.)
  auto run_with_seed = [](std::uint64_t seed) {
    Engine eng;
    StorageEndpoint src{"src", Tier::BeamlineLocal, TiB};
    StorageEndpoint dst{"dst", Tier::Cfs, TiB};
    net::Link link{eng, "l", gbps(10), 0.05};
    TransferService svc{eng, seed};
    svc.add_route("src", "dst", &link);
    svc.tuning().per_task_overhead = 1.0;
    svc.tuning().per_file_overhead = 0.0;
    svc.tuning().checksum_rate = 0.0;
    svc.tuning().retry_delay = 1.0;
    svc.set_corruption_rate(1.0);
    EXPECT_TRUE(src.put("/raw/a", GB, 0xABCD, 0.0).ok());
    TransferSpec spec;
    spec.src = &src;
    spec.dst = &dst;
    spec.files = {{"/raw/a", "/x"}};
    auto fut = svc.submit(std::move(spec));
    eng.run();
    return fut.value().duration();
  };
  const double a = run_with_seed(7);
  const double b = run_with_seed(7);
  const double c = run_with_seed(8);
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Transfer, CleanupOnlyRemovesFailedFiles) {
  // A multi-file task where one file always corrupts: the good files stay,
  // only the failed file's corrupted copy is removed.
  World w;
  ASSERT_TRUE(w.beamline.put("/raw/good", GB, 0x1, 0.0).ok());
  ASSERT_TRUE(w.beamline.put("/raw/bad", GB, 0x2, 0.0).ok());
  TransferSpec good;
  good.src = &w.beamline;
  good.dst = &w.cfs;
  good.files = {{"/raw/good", "/dst/good"}};
  auto out_good = w.run(std::move(good));
  EXPECT_TRUE(out_good.status.ok());

  w.svc.set_corruption_rate(1.0);
  TransferSpec bad;
  bad.src = &w.beamline;
  bad.dst = &w.cfs;
  bad.files = {{"/raw/bad", "/dst/bad"}};
  auto out_bad = w.run(std::move(bad));
  EXPECT_FALSE(out_bad.status.ok());
  EXPECT_TRUE(w.cfs.exists("/dst/good"));
  EXPECT_FALSE(w.cfs.exists("/dst/bad"));
}

TEST(Transfer, PermissionDeniedIsPermanent) {
  World w;
  w.cfs.deny("put", "/protected/");
  ASSERT_TRUE(w.beamline.put("/raw/a", GB, 1, 0.0).ok());
  TransferSpec spec;
  spec.src = &w.beamline;
  spec.dst = &w.cfs;
  spec.files = {{"/raw/a", "/protected/x"}};
  auto out = w.run(std::move(spec));
  EXPECT_EQ(out.status.error().code, "permission_denied");
  EXPECT_EQ(out.retries, 0);  // fail-early: no pointless retries
}

TEST(Transfer, TransientFailuresRetried) {
  World w;
  w.svc.set_transient_failure_rate(0.4);
  TransferSpec spec;
  spec.src = &w.beamline;
  spec.dst = &w.cfs;
  for (int i = 0; i < 30; ++i) {
    std::string p = "/raw/g" + std::to_string(i);
    ASSERT_TRUE(w.beamline.put(p, MB, 7, 0.0).ok());
    spec.files.push_back({p, "/dst/g" + std::to_string(i)});
  }
  auto out = w.run(std::move(spec));
  EXPECT_GT(out.retries, 0);
  EXPECT_GT(out.files_ok, 20u);  // most files make it through retries
}

TEST(Transfer, HistoryRecorded) {
  World w;
  ASSERT_TRUE(w.beamline.put("/raw/a", GB, 1, 0.0).ok());
  TransferSpec spec;
  spec.src = &w.beamline;
  spec.dst = &w.cfs;
  spec.files = {{"/raw/a", "/x"}};
  spec.label = "new_file_832:copy";
  (void)w.run(std::move(spec));
  ASSERT_EQ(w.svc.history().size(), 1u);
  EXPECT_EQ(w.svc.history()[0].label, "new_file_832:copy");
  EXPECT_EQ(w.svc.total_bytes_moved(), GB);
}

TEST(Transfer, ChecksumTimeCostModeled) {
  World w;
  w.svc.tuning().checksum_rate = 1e9;  // 1 GB/s verification read
  ASSERT_TRUE(w.beamline.put("/raw/a", 10 * GB, 1, 0.0).ok());
  TransferSpec with;
  with.src = &w.beamline;
  with.dst = &w.cfs;
  with.files = {{"/raw/a", "/x"}};
  with.verify_checksum = true;
  auto out_with = w.run(std::move(with));

  World w2;
  w2.svc.tuning().checksum_rate = 1e9;
  ASSERT_TRUE(w2.beamline.put("/raw/a", 10 * GB, 1, 0.0).ok());
  TransferSpec without;
  without.src = &w2.beamline;
  without.dst = &w2.cfs;
  without.files = {{"/raw/a", "/x"}};
  without.verify_checksum = false;
  auto out_without = w2.run(std::move(without));

  EXPECT_NEAR(out_with.duration() - out_without.duration(), 10.0, 0.1);
}

}  // namespace
}  // namespace alsflow::transfer
