// Runtime hot-path allocation guard: the dynamic half of the hot-path
// purity contract (tools/alsflow_hotcheck.py is the static half; both
// define a hot region the same way — parallel_for bodies and ALSFLOW_HOT
// functions — and must agree).
//
// Death tests run in "threadsafe" style: the statement re-executes in a
// fresh process, so set_enforcing(true) inside the test body applies in
// the child too and the abort witness is matched against its stderr.
//
// The steady-state suite at the bottom pins the hoisted kernels: after one
// warm-up run grows the worker arenas, a second run of every
// reconstruction kernel must observe *zero* new allocations inside hot
// regions — the regression test for the per-iteration scratch this PR
// removed. Counter tests are skipped when the counting hooks are not
// compiled in (plain release builds); the Debug/sanitizer CI legs and the
// -DALSFLOW_HOT_GUARD=ON build run them.
#include <gtest/gtest.h>

#include <complex>
#include <cstring>
#include <memory>
#include <vector>

#include "common/hot_guard.hpp"
#include "parallel/scratch.hpp"
#include "parallel/thread_pool.hpp"
#include "tomo/fft.hpp"
#include "tomo/phantom.hpp"
#include "tomo/projector.hpp"
#include "tomo/recon.hpp"
#include "tomo/streaming.hpp"

namespace alsflow {
namespace {

// Enforcement is a process-global switch; save/restore around every test
// and default it off so counting tests observe without aborting.
class HotGuardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enforcing_ = hotguard::enforcing();
    hotguard::set_enforcing(false);
  }
  void TearDown() override { hotguard::set_enforcing(was_enforcing_); }
  bool was_enforcing_ = false;
};

TEST_F(HotGuardTest, RegionStackIsIntrospectable) {
  EXPECT_EQ(hotguard::depth(), 0u);
  EXPECT_EQ(hotguard::current_region(), nullptr);
  {
    hotguard::HotRegion outer("test.outer");
    EXPECT_EQ(hotguard::depth(), 1u);
    EXPECT_STREQ(hotguard::current_region(), "test.outer");
    {
      hotguard::HotRegion inner("test.inner");
      EXPECT_EQ(hotguard::depth(), 2u);
      EXPECT_STREQ(hotguard::current_region(), "test.inner");
      EXPECT_STREQ(hotguard::region_name(0), "test.outer");
      EXPECT_STREQ(hotguard::region_name(1), "test.inner");
      EXPECT_EQ(hotguard::region_name(2), nullptr);  // out of range
    }
    EXPECT_EQ(hotguard::depth(), 1u);
    EXPECT_STREQ(hotguard::current_region(), "test.outer");
  }
  EXPECT_EQ(hotguard::depth(), 0u);
}

// The pool snapshots the submitter's innermost region and re-enters it
// around every chunk body, so a kernel's region covers the workers that
// actually execute its iterations.
TEST_F(HotGuardTest, PoolPropagatesSubmitterRegionToWorkers) {
  constexpr std::size_t kN = 64;
  std::vector<const char*> seen(kN, nullptr);
  std::vector<std::size_t> depths(kN, 0);
  {
    hotguard::HotRegion region("test.submit");
    parallel::ThreadPool::global().parallel_for(0, kN, [&](std::size_t i) {
      seen[i] = hotguard::current_region();
      depths[i] = hotguard::depth();
    });
  }
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_NE(seen[i], nullptr) << "iteration " << i;
    EXPECT_STREQ(seen[i], "test.submit") << "iteration " << i;
    EXPECT_GE(depths[i], 1u) << "iteration " << i;
  }
  EXPECT_EQ(hotguard::depth(), 0u);
}

TEST_F(HotGuardTest, WorkerScratchReturnsExactSpanAndReuses) {
  auto s1 = parallel::WorkerScratch::complex_buffer(
      parallel::WorkerScratch::kFft2Col, 256);
  ASSERT_EQ(s1.size(), 256u);
  s1[0] = {1.0, -1.0};
  s1[255] = {2.0, 0.5};

  // A smaller request reuses the same storage, clipped to n.
  auto s2 = parallel::WorkerScratch::complex_buffer(
      parallel::WorkerScratch::kFft2Col, 64);
  ASSERT_EQ(s2.size(), 64u);
  EXPECT_EQ(s2.data(), s1.data());
  EXPECT_EQ(s2[0], (std::complex<double>{1.0, -1.0}));

  // Growth keeps the slot monotonic and is reflected in thread_bytes.
  auto s3 = parallel::WorkerScratch::complex_buffer(
      parallel::WorkerScratch::kFft2Col, 512);
  ASSERT_EQ(s3.size(), 512u);
  EXPECT_GE(parallel::WorkerScratch::thread_bytes(),
            512 * sizeof(std::complex<double>));

  // Distinct slots never alias: nested kernels on one thread each get
  // their own buffer.
  auto pad = parallel::WorkerScratch::complex_buffer(
      parallel::WorkerScratch::kFilterPad, 64);
  EXPECT_NE(pad.data(), s3.data());

  auto f = parallel::WorkerScratch::float_buffer(
      parallel::WorkerScratch::kStreamRow, 33);
  EXPECT_EQ(f.size(), 33u);
  auto d = parallel::WorkerScratch::double_buffer(
      parallel::WorkerScratch::kTrigCos, 17);
  EXPECT_EQ(d.size(), 17u);
}

// With enforcement off (or the hooks absent), allocating inside a region
// is the unguarded fast path: it must simply work.
TEST_F(HotGuardTest, GuardOffFastPathAllocatesNormally) {
  hotguard::HotRegion region("test.fastpath");
  auto p = std::make_unique<int>(41);
  *p += 1;
  EXPECT_EQ(*p, 42);
  if (!hotguard::hooks_compiled()) {
    EXPECT_EQ(hotguard::hot_alloc_count(), 0u);
    EXPECT_EQ(hotguard::hot_alloc_bytes(), 0u);
  }
}

TEST_F(HotGuardTest, CountersObserveWithoutAbortingWhenNotEnforcing) {
  if (!hotguard::hooks_compiled()) {
    GTEST_SKIP() << "counting hooks not compiled into this build";
  }
  const auto count0 = hotguard::hot_alloc_count();
  const auto bytes0 = hotguard::hot_alloc_bytes();
  {
    hotguard::HotRegion region("test.count");
    std::unique_ptr<char[]> p(new char[128]);
    p[0] = 'x';
  }
  EXPECT_GE(hotguard::hot_alloc_count(), count0 + 1);
  EXPECT_GE(hotguard::hot_alloc_bytes(), bytes0 + 128);
}

TEST_F(HotGuardTest, AllocInsideHotRegionAbortsWithWitness) {
  if (!hotguard::hooks_compiled()) {
    GTEST_SKIP() << "counting hooks not compiled into this build";
  }
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        hotguard::set_enforcing(true);
        hotguard::HotRegion region("test.death");
        int* leak = new int(7);
        (void)leak;
      },
      "hot-guard violation(.|\n)*test\\.death(.|\n)*WorkerScratch");
}

TEST_F(HotGuardTest, NestedRegionWitnessListsWholeStack) {
  if (!hotguard::hooks_compiled()) {
    GTEST_SKIP() << "counting hooks not compiled into this build";
  }
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        hotguard::set_enforcing(true);
        hotguard::HotRegion outer("test.outer");
        hotguard::HotRegion inner("test.inner");
        int* leak = new int(9);
        (void)leak;
      },
      "test\\.outer(.|\n)*test\\.inner");
}

// fft2 dispatches to the pool above a size threshold and shares the same
// chunk bodies on the serial path; the worker-local column scratch must
// not change a single bit of the output.
TEST_F(HotGuardTest, Fft2ParallelMatchesSerialReferenceExactly) {
  constexpr std::size_t kNy = 128, kNx = 128;  // above the parallel cutoff
  std::vector<std::complex<double>> data(kNy * kNx);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = {std::sin(0.1 * double(i)), std::cos(0.3 * double(i))};
  }
  auto reference = data;

  tomo::fft2(data, kNy, kNx, false);

  // Serial reference: identical row transforms, then identical column
  // gather/transform/scatter with a private buffer.
  for (std::size_t y = 0; y < kNy; ++y) {
    tomo::fft(std::span<std::complex<double>>(reference.data() + y * kNx, kNx),
              false);
  }
  std::vector<std::complex<double>> col(kNy);
  for (std::size_t x = 0; x < kNx; ++x) {
    for (std::size_t y = 0; y < kNy; ++y) col[y] = reference[y * kNx + x];
    tomo::fft(col, false);
    for (std::size_t y = 0; y < kNy; ++y) reference[y * kNx + x] = col[y];
  }

  ASSERT_EQ(std::memcmp(data.data(), reference.data(),
                        data.size() * sizeof(data[0])),
            0)
      << "parallel fft2 output differs from the serial reference";

  // And the round trip still inverts bit-exactly enough for the digest:
  tomo::fft2(data, kNy, kNx, true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), std::sin(0.1 * double(i)), 1e-9);
    EXPECT_NEAR(data[i].imag(), std::cos(0.3 * double(i)), 1e-9);
  }
}

// Zero-bytes-per-iteration regression: after one warm-up run has grown the
// worker arenas, re-running every hoisted kernel must add nothing to the
// hot-allocation counters. This is exactly the property the PR's scratch
// hoisting bought; a relapse (per-iteration vector, per-call trig table)
// shows up here as a counter delta even when enforcement is off.
TEST_F(HotGuardTest, HoistedKernelsRunAllocationFreeInSteadyState) {
  if (!hotguard::hooks_compiled()) {
    GTEST_SKIP() << "counting hooks not compiled into this build";
  }
  constexpr std::size_t kN = 64;
  const tomo::Geometry geo{90, kN, -1.0};
  const tomo::Image phantom = tomo::shepp_logan(kN);
  const tomo::Image sino = tomo::forward_project(phantom, geo);

  tomo::StreamingConfig scfg;
  scfg.geo = geo;
  scfg.n_rows = 4;
  scfg.normalize = false;
  tomo::StreamingReconstructor streamer(scfg);
  tomo::Image frame(scfg.n_rows, geo.n_det, 0.25f);

  const auto run_all = [&] {
    tomo::ReconOptions opts;
    opts.algorithm = tomo::Algorithm::FBP;
    tomo::reconstruct_slice(sino, geo, kN, opts);
    opts.algorithm = tomo::Algorithm::Gridrec;
    tomo::reconstruct_slice(sino, geo, kN, opts);
    opts.algorithm = tomo::Algorithm::SIRT;
    opts.n_iterations = 2;
    tomo::reconstruct_slice(sino, geo, kN, opts);
    opts.algorithm = tomo::Algorithm::MLEM;
    tomo::reconstruct_slice(sino, geo, kN, opts);
    std::vector<std::complex<double>> buf(128 * 128, {1.0, 0.0});
    tomo::fft2(buf, 128, 128, false);
    for (std::size_t a = 0; a < geo.n_angles; ++a) {
      streamer.on_frame(a, frame);
    }
    streamer.finalize();
  };

  run_all();  // warm-up: arenas grow outside the regions, legally
  const auto count0 = hotguard::hot_alloc_count();
  const auto bytes0 = hotguard::hot_alloc_bytes();
  run_all();  // steady state: every hot region must be allocation-free
  EXPECT_EQ(hotguard::hot_alloc_count(), count0)
      << "a hot region allocated in steady state";
  EXPECT_EQ(hotguard::hot_alloc_bytes(), bytes0);
}

}  // namespace
}  // namespace alsflow
