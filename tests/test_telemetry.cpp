// Telemetry layer: span nesting under the sim engine, histogram bucket
// semantics, concurrent counters from the thread pool (TSan-checked in
// CI), exporter golden outputs, the disabled-sink fast path, and the
// structured log sink.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <vector>

#include "common/log.hpp"
#include "common/telemetry.hpp"
#include "flow/engine.hpp"
#include "net/link.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "storage/endpoint.hpp"
#include "transfer/transfer_service.hpp"

namespace alsflow::telemetry {
namespace {

// The instrumented stack reports into the process-global Telemetry;
// isolate each test by clearing it and restore the disabled default.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    global().clear();
    global().set_enabled(true);
  }
  void TearDown() override {
    global().set_enabled(false);
    global().clear();
  }
};

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

TEST_F(TelemetryTest, SpanNestingUnderSimEngine) {
  sim::Engine eng;
  Tracer& tracer = global().tracer();

  // Two overlapping coroutine activities, each with a child span; explicit
  // parents keep the tree correct even though execution interleaves.
  auto activity = [&](const char* name, Seconds child_delay) -> sim::Proc {
    SpanId outer = tracer.begin("flow", name, 0, ClockDomain::Sim, eng.now());
    co_await sim::delay(eng, 5.0);
    SpanId inner =
        tracer.begin("task", "work", outer, ClockDomain::Sim, eng.now());
    co_await sim::delay(eng, child_delay);
    tracer.end(inner, eng.now());
    tracer.end(outer, eng.now());
  };
  activity("a", 10.0).detach();
  activity("b", 2.0).detach();
  eng.run();

  auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 4u);
  const SpanRecord* a = nullptr;
  const SpanRecord* b = nullptr;
  for (const auto& s : spans) {
    if (s.name == "a") a = &s;
    if (s.name == "b") b = &s;
  }
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->parent, 0u);
  EXPECT_DOUBLE_EQ(a->start, 0.0);
  EXPECT_DOUBLE_EQ(a->end, 15.0);
  EXPECT_DOUBLE_EQ(b->end, 7.0);
  // Each child parents to its own activity's outer span.
  int children = 0;
  for (const auto& s : spans) {
    if (s.name != "work") continue;
    ++children;
    EXPECT_TRUE(s.parent == a->id || s.parent == b->id);
    const SpanRecord& parent = s.parent == a->id ? *a : *b;
    EXPECT_GE(s.start, parent.start);
    EXPECT_LE(s.end, parent.end);
    EXPECT_DOUBLE_EQ(s.start, 5.0);
  }
  EXPECT_EQ(children, 2);
}

TEST_F(TelemetryTest, FlowTaskTransferSpanTree) {
  sim::Engine eng;
  flow::RunDatabase db;
  flow::FlowEngine flows(eng, db);
  storage::StorageEndpoint src("src", storage::Tier::BeamlineLocal, TiB);
  storage::StorageEndpoint dst("dst", storage::Tier::Cfs, TiB);
  net::Link link(eng, "lnk", gbps(10), 0.0);
  transfer::TransferService svc(eng);
  svc.add_route("src", "dst", &link);
  ASSERT_TRUE(src.put("/f", GB, 1, 0.0).ok());

  flows.register_flow("f", [&](flow::FlowContext ctx) -> sim::Future<Status> {
    std::function<sim::Future<Status>()> body =
        [&svc, &src, &dst, &flows,
         run_id = ctx.run_id]() -> sim::Future<Status> {
      transfer::TransferSpec spec;
      spec.src = &src;
      spec.dst = &dst;
      spec.files = {{"/f", "/f"}};
      spec.label = "move";
      spec.trace_parent = flows.task_span(run_id);
      auto out = co_await svc.submit(std::move(spec));
      co_return out.status;
    };
    co_return co_await flows.run_task(ctx, "move_task", body);
  });
  auto fut = flows.run_flow("f");
  eng.run();
  ASSERT_TRUE(fut.value().status.ok());

  // flow -> task -> transfer, all in the sim domain.
  const auto spans = global().tracer().spans();
  const SpanRecord* flow_span = nullptr;
  const SpanRecord* task_span = nullptr;
  const SpanRecord* transfer_span = nullptr;
  for (const auto& s : spans) {
    if (s.component == "flow" && s.name == "f") flow_span = &s;
    if (s.component == "task") task_span = &s;
    if (s.component == "transfer") transfer_span = &s;
  }
  ASSERT_NE(flow_span, nullptr);
  ASSERT_NE(task_span, nullptr);
  ASSERT_NE(transfer_span, nullptr);
  EXPECT_EQ(task_span->parent, flow_span->id);
  EXPECT_EQ(transfer_span->parent, task_span->id);
  EXPECT_EQ(transfer_span->domain, ClockDomain::Sim);
  EXPECT_GE(transfer_span->start, task_span->start);
  EXPECT_LE(transfer_span->end, task_span->end);
  // The per-route byte counter matches the file that moved.
  EXPECT_EQ(global()
                .metrics()
                .counter("alsflow_transfer_bytes_total", "route=\"src->dst\"")
                .value(),
            GB);
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST_F(TelemetryTest, HistogramBucketBoundaries) {
  Histogram h({1.0, 5.0, 10.0});
  // Prometheus semantics: le is inclusive.
  h.observe(0.5);   // <= 1
  h.observe(1.0);   // <= 1 (boundary)
  h.observe(1.001); // <= 5
  h.observe(5.0);   // <= 5 (boundary)
  h.observe(10.0);  // <= 10 (boundary)
  h.observe(11.0);  // +Inf
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.001 + 5.0 + 10.0 + 11.0);

  Summary s = h.summary();
  EXPECT_EQ(s.n, 6u);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 11.0);
  EXPECT_NEAR(s.mean, (0.5 + 1.0 + 1.001 + 5.0 + 10.0 + 11.0) / 6.0, 1e-9);
  // Quantiles are bucket-interpolated: just sanity-bound them.
  EXPECT_GE(s.median, 1.0);
  EXPECT_LE(s.median, 5.0);
  EXPECT_LE(s.p05, 1.0);
  EXPECT_GE(s.p95, 10.0);
}

TEST_F(TelemetryTest, HistogramUnsortedBoundsAreSorted) {
  Histogram h({10.0, 1.0, 5.0, 5.0});
  ASSERT_EQ(h.bounds().size(), 3u);
  EXPECT_DOUBLE_EQ(h.bounds()[0], 1.0);
  EXPECT_DOUBLE_EQ(h.bounds()[2], 10.0);
}

TEST_F(TelemetryTest, QuantileEmptyHistogramIsZero) {
  Histogram h({1.0, 5.0, 10.0});
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.0);
}

TEST_F(TelemetryTest, QuantileSingleBucketInterpolatesLinearly) {
  // All samples land in the first bucket [0, 10]: the estimator
  // interpolates between min(0, observed min) and the bucket's upper
  // bound, so rank fraction maps linearly onto [0, 10].
  Histogram h({10.0});
  for (double v : {2.0, 4.0, 6.0, 8.0}) h.observe(v);
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 2.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
}

TEST_F(TelemetryTest, QuantileOverflowBucketInterpolatesTowardMax) {
  // Three samples in the +Inf bucket: its upper edge is the exact observed
  // max, so the estimate never leaves the observed range.
  Histogram h({1.0});
  h.observe(0.5);
  h.observe(10.0);
  h.observe(20.0);
  h.observe(30.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 30.0);
  // target = 0.625*4 = 2.5 ranks -> 1.5 ranks into the overflow bucket of
  // 3: lo=1 (last bound), hi=30 (max), frac=0.5.
  EXPECT_DOUBLE_EQ(h.quantile(0.625), 1.0 + (30.0 - 1.0) * 0.5);
  EXPECT_LE(h.quantile(0.99), 30.0);
}

TEST_F(TelemetryTest, QuantileClampsArgumentAndTracksNegativeMin) {
  Histogram h({1.0});
  h.observe(-3.0);
  h.observe(0.5);
  // q outside [0, 1] clamps rather than extrapolating.
  EXPECT_DOUBLE_EQ(h.quantile(-2.0), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(7.0), h.quantile(1.0));
  // The first bucket's lower edge follows the observed (negative) min.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), -3.0);
}

TEST_F(TelemetryTest, NumericValuesFlattensEverySeries) {
  auto& m = global().metrics();
  m.counter("nv_jobs_total").add(3);
  m.gauge("nv_depth", "facility=\"nersc\"").set(2.5);
  Histogram& h = m.histogram("nv_wait_seconds", {1.0, 10.0});
  h.observe(0.5);
  h.observe(4.0);
  const auto values = m.numeric_values();
  auto find = [&](const std::string& name) -> const double* {
    for (const auto& [n, v] : values) {
      if (n == name) return &v;
    }
    return nullptr;
  };
  ASSERT_NE(find("nv_jobs_total"), nullptr);
  EXPECT_DOUBLE_EQ(*find("nv_jobs_total"), 3.0);
  ASSERT_NE(find("nv_depth{facility=\"nersc\"}"), nullptr);
  EXPECT_DOUBLE_EQ(*find("nv_depth{facility=\"nersc\"}"), 2.5);
  ASSERT_NE(find("nv_wait_seconds_count"), nullptr);
  EXPECT_DOUBLE_EQ(*find("nv_wait_seconds_count"), 2.0);
  ASSERT_NE(find("nv_wait_seconds_sum"), nullptr);
  EXPECT_DOUBLE_EQ(*find("nv_wait_seconds_sum"), 4.5);
}

TEST_F(TelemetryTest, ConcurrentCounterIncrementsFromThreadPool) {
  parallel::ThreadPool pool(4);
  Counter& c = global().metrics().counter("test_concurrent_total");
  Histogram& h =
      global().metrics().histogram("test_concurrent_hist", {0.25, 0.5, 0.75});
  constexpr std::size_t kN = 100000;
  pool.parallel_for(0, kN, [&](std::size_t i) {
    c.add();
    h.observe(double(i) / double(kN));
  });
  EXPECT_EQ(c.value(), kN);
  EXPECT_EQ(h.count(), kN);
  std::uint64_t total = 0;
  for (std::size_t b = 0; b <= h.bounds().size(); ++b) {
    total += h.bucket_count(b);
  }
  EXPECT_EQ(total, kN);
  // Pool instrumentation itself counted the chunks it ran.
  auto& m = global().metrics();
  EXPECT_GE(m.counter("alsflow_pool_invocations_total").value(), 1u);
  EXPECT_GE(m.counter("alsflow_pool_chunks_total").value(), 1u);
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TEST_F(TelemetryTest, ChromeTraceGolden) {
  Tracer tracer;
  SpanId root = tracer.begin("flow", "f", 0, ClockDomain::Sim, 1.0);
  SpanId child = tracer.begin("task", "t", root, ClockDomain::Sim, 2.0);
  tracer.attr(child, "k", "v");
  tracer.end(child, 3.0);
  tracer.end(root, 4.0);

  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"sim-time\"}},\n"
      "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
      "\"args\":{\"name\":\"wall-time\"}},\n"
      "{\"name\":\"f\",\"cat\":\"flow\",\"ph\":\"X\",\"ts\":1000000,"
      "\"dur\":3000000,\"pid\":0,\"tid\":1,"
      "\"args\":{\"span_id\":\"1\",\"parent\":\"0\"}},\n"
      "{\"name\":\"t\",\"cat\":\"task\",\"ph\":\"X\",\"ts\":2000000,"
      "\"dur\":1000000,\"pid\":0,\"tid\":1,"
      "\"args\":{\"span_id\":\"2\",\"parent\":\"1\",\"k\":\"v\"}}\n"
      "]}\n";
  EXPECT_EQ(tracer.chrome_trace_json(), expected);
}

TEST_F(TelemetryTest, PrometheusAndJsonGolden) {
  MetricsRegistry reg;
  reg.counter("alsflow_widgets_total", "kind=\"a\"").add(3);
  reg.gauge("alsflow_depth").set(2.5);
  auto& h = reg.histogram("alsflow_lat_seconds", {1.0, 10.0});
  h.observe(0.5);
  h.observe(4.0);
  h.observe(40.0);

  const std::string prom =
      "# TYPE alsflow_widgets_total counter\n"
      "alsflow_widgets_total{kind=\"a\"} 3\n"
      "# TYPE alsflow_depth gauge\n"
      "alsflow_depth 2.5\n"
      "# TYPE alsflow_lat_seconds histogram\n"
      "alsflow_lat_seconds_bucket{le=\"1\"} 1\n"
      "alsflow_lat_seconds_bucket{le=\"10\"} 2\n"
      "alsflow_lat_seconds_bucket{le=\"+Inf\"} 3\n"
      "alsflow_lat_seconds_sum 44.5\n"
      "alsflow_lat_seconds_count 3\n";
  EXPECT_EQ(reg.prometheus_text(), prom);

  const std::string json =
      "{\n"
      "  \"counters\": {\n"
      "    \"alsflow_widgets_total{kind=\\\"a\\\"}\": 3\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"alsflow_depth\": 2.5\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"alsflow_lat_seconds\": {\"count\": 3, \"sum\": 44.5, "
      "\"buckets\": [1, 1, 1], \"bounds\": [1, 10]}\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(reg.json(), json);

  // report() renders one row per instrument; histogram rows reuse
  // Summary::row.
  const std::string report = reg.report();
  EXPECT_NE(report.find("alsflow_widgets_total{kind=\"a\"}"),
            std::string::npos);
  EXPECT_NE(report.find("+/-"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Disabled fast path
// ---------------------------------------------------------------------------

TEST_F(TelemetryTest, DisabledSinkRecordsNothing) {
  global().set_enabled(false);

  // Drive the instrumented stack: flow + task + transfer + pool.
  sim::Engine eng;
  flow::RunDatabase db;
  flow::FlowEngine flows(eng, db);
  flows.register_flow("f", [&](flow::FlowContext ctx) -> sim::Future<Status> {
    std::function<sim::Future<Status>()> body = [&]() -> sim::Future<Status> {
      co_await sim::delay(eng, 1.0);
      co_return Status::success();
    };
    co_return co_await flows.run_task(ctx, "t", body);
  });
  auto fut = flows.run_flow("f");
  eng.run();
  ASSERT_TRUE(fut.value().status.ok());

  parallel::ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  pool.parallel_for(0, 1000, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 1000u * 999u / 2u);

  EXPECT_EQ(global().tracer().span_count(), 0u);
  // Instruments registered by other tests persist in the global registry
  // (clear() zeroes, never removes), so assert the instrumented sites left
  // every relevant value at zero rather than expecting an empty export.
  auto& m = global().metrics();
  EXPECT_EQ(m.counter("alsflow_flow_runs_started_total", "flow=\"f\"").value(),
            0u);
  EXPECT_EQ(m.counter("alsflow_pool_invocations_total").value(), 0u);
  EXPECT_EQ(m.counter("alsflow_pool_chunks_total").value(), 0u);
  EXPECT_EQ(flows.task_span(fut.value().run_id), 0u);
}

TEST_F(TelemetryTest, RegistryClearKeepsReferencesValid) {
  Counter& c = global().metrics().counter("stable_total");
  c.add(7);
  global().metrics().clear();
  EXPECT_EQ(c.value(), 0u);
  c.add(1);  // reference still valid after clear()
  EXPECT_EQ(global().metrics().counter("stable_total").value(), 1u);
}

}  // namespace
}  // namespace alsflow::telemetry

// ---------------------------------------------------------------------------
// Structured logging through the shared sink
// ---------------------------------------------------------------------------

namespace alsflow {
namespace {

struct LogCapture {
  std::vector<LogRecord> records;
  LogCapture() {
    set_log_sink([this](const LogRecord& r) { records.push_back(r); });
  }
  ~LogCapture() { set_log_sink(nullptr); }
};

TEST(Log, SinkCapturesStructuredRecords) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::Info);
  LogCapture capture;
  log_info("globus") << "moved " << 3 << " files";
  log_debug("globus") << "suppressed";
  set_log_level(saved);

  ASSERT_EQ(capture.records.size(), 1u);
  const LogRecord& rec = capture.records.front();
  EXPECT_EQ(rec.level, LogLevel::Info);
  EXPECT_EQ(rec.component, "globus");
  EXPECT_EQ(rec.message, "moved 3 files");
  EXPECT_GE(rec.wall_time, 0.0);
  const std::string line = format_log_line(rec);
  EXPECT_NE(line.find("INFO"), std::string::npos);
  EXPECT_NE(line.find("globus"), std::string::npos);
  EXPECT_NE(line.find("moved 3 files"), std::string::npos);
}

// An operand whose stream-insertion is observable: a disabled LogStream
// must never invoke it (formatting is the cost being skipped).
struct CountingOperand {
  int* streamed;
};
std::ostream& operator<<(std::ostream& os, const CountingOperand& c) {
  ++*c.streamed;
  return os << "expensive";
}

TEST(Log, DisabledLevelSkipsFormatting) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::Warn);
  LogCapture capture;
  int streamed = 0;
  log_debug("test") << CountingOperand{&streamed};
  EXPECT_EQ(streamed, 0);  // below the level: operand never formatted
  EXPECT_TRUE(capture.records.empty());
  log_warn("test") << CountingOperand{&streamed};
  EXPECT_EQ(streamed, 1);
  ASSERT_EQ(capture.records.size(), 1u);
  EXPECT_EQ(capture.records.front().message, "expensive");
  set_log_level(saved);
}

TEST(Log, ParseLogLevel) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::Debug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::Info);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::Error);
  EXPECT_EQ(parse_log_level("off"), LogLevel::Off);
  EXPECT_EQ(parse_log_level(nullptr, LogLevel::Info), LogLevel::Info);
  EXPECT_EQ(parse_log_level("bogus", LogLevel::Error), LogLevel::Error);
}

}  // namespace
}  // namespace alsflow
