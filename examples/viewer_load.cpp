// viewer_load — concurrent Tiled viewers hammering the serving front end.
//
// Models the access-layer moment from Section 4.2.4: a beamline group and
// a remote collaborator both scrubbing through a freshly published
// multiscale reconstruction while a bulk export script churns in the
// background. The serve::Frontend keeps the interactive viewers fast
// (cache + weighted-fair dequeue) and sheds the export's excess instead
// of letting queues grow.
//
// Prints the per-tenant outcome, cache effectiveness, latency percentiles
// and the telemetry metrics snapshot.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "access/tiled.hpp"
#include "common/telemetry.hpp"
#include "data/multiscale.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/frontend.hpp"
#include "tomo/phantom.hpp"

using namespace alsflow;

namespace {

struct TenantOutcome {
  std::string name;
  std::size_t served = 0;
  std::size_t failed = 0;
  std::vector<double> latency;
};

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  return xs[std::size_t(p * double(xs.size() - 1))];
}

}  // namespace

int main() {
  telemetry::global().set_enabled(true);

  std::printf("=== viewer_load: concurrent viewers on serve::Frontend ===\n\n");
  const std::size_t n = 192;
  auto volume = std::make_shared<const data::MultiscaleVolume>(
      data::MultiscaleVolume::build(tomo::shepp_logan_3d(n), 3, 32));
  access::TiledService tiled;
  tiled.register_volume("scan-0001", volume);

  // Dedicated pool so render workers are real threads even on boxes where
  // the global pool is serial (single-core CI).
  parallel::ThreadPool pool(3);
  serve::FrontendConfig cfg;
  cfg.pool = &pool;
  cfg.concurrency = 2;
  cfg.max_queue = 48;
  cfg.per_tenant_queue = 48;
  cfg.cache_bytes = 32 * MiB;
  cfg.max_queue_wait = 0.05;
  serve::Frontend frontend(tiled, cfg);
  // Interactive viewers outweigh the batch exporter 4:1.
  frontend.set_tenant_weight("beamline", 4.0);
  frontend.set_tenant_weight("remote", 4.0);
  frontend.set_tenant_weight("export", 1.0);

  // Each viewer scrubs through slices; the exporter walks every slice of
  // every axis as fast as it can submit.
  auto viewer = [&](TenantOutcome* out, std::size_t requests, int axis,
                    std::size_t stride) {
    for (std::size_t i = 0; i < requests; ++i) {
      serve::SliceRequest req;
      req.tenant = out->name;
      req.volume = "scan-0001";
      req.level = 0;
      req.axis = axis;
      req.index = (i * stride) % n;
      const auto t0 = std::chrono::steady_clock::now();
      auto r = frontend.submit(std::move(req))->wait();
      const double dt =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      if (r.ok()) {
        out->served++;
        out->latency.push_back(dt);
      } else {
        out->failed++;
      }
    }
  };
  auto exporter = [&](TenantOutcome* out) {
    std::vector<std::shared_ptr<serve::Ticket>> open;
    for (std::size_t i = 0; i < 3 * n; ++i) {  // open-loop: no backpressure
      serve::SliceRequest req;
      req.tenant = out->name;
      req.volume = "scan-0001";
      req.level = 0;
      req.axis = int(i / n);
      req.index = i % n;
      open.push_back(frontend.submit(std::move(req)));
    }
    for (auto& t : open) {
      if (t->wait().ok()) {
        out->served++;
      } else {
        out->failed++;
      }
    }
  };

  TenantOutcome beamline{"beamline"}, remote{"remote"}, exporte{"export"};
  std::thread t1(viewer, &beamline, 200, 0, 1);   // scrub z, revisits
  std::thread t2(viewer, &remote, 200, 2, 7);     // strided x scrub
  std::thread t3(exporter, &exporte);
  t1.join();
  t2.join();
  t3.join();
  frontend.drain();

  std::printf("%-10s %8s %8s %12s %12s\n", "tenant", "served", "failed",
              "p50 (ms)", "p99 (ms)");
  for (const auto* t : {&beamline, &remote, &exporte}) {
    std::printf("%-10s %8zu %8zu %12.3f %12.3f\n", t->name.c_str(), t->served,
                t->failed, percentile(t->latency, 0.5) * 1e3,
                percentile(t->latency, 0.99) * 1e3);
  }

  const auto cs = frontend.cache_stats();
  const auto st = frontend.stats();
  const double lookups = double(cs.hits + cs.misses + cs.coalesced);
  std::printf("\ncache: %zu hits / %zu misses / %zu coalesced"
              "  (hit rate %.0f%%, %zu evictions)\n",
              cs.hits, cs.misses, cs.coalesced,
              lookups > 0 ? 100.0 * double(cs.hits + cs.coalesced) / lookups
                          : 0.0,
              cs.evictions);
  std::printf("frontend: %zu submitted, %zu served, %zu shed, %zu rejected, "
              "%zu degraded, max queue depth %zu\n",
              st.submitted, st.served, st.shed, st.rejected, st.degraded,
              st.max_queue_depth);
  std::printf("tiled service rendered %zu slices (%s)\n", tiled.requests(),
              human_bytes(tiled.bytes_served()).c_str());

  std::printf("\nmetrics snapshot\n%s",
              telemetry::global().metrics().report().c_str());
  return 0;
}
