// Case study 2: fracking-proppant retrospective.
//
// The paper reanalyzes a 2020 micro-CT dataset of proppant-filled shale
// fractures with the new infrastructure: reconstruct, segment, and export
// for communication (VR). We reproduce the analysis chain: reconstruct the
// proppant phantom, threshold-segment the three phases, compute fracture
// metrics, build the multiscale pyramid the viewer streams, and export
// presentation slices.
#include <cstdio>
#include <memory>
#include <vector>

#include "access/render.hpp"
#include "access/tiled.hpp"
#include "data/multiscale.hpp"
#include "data/tiff.hpp"
#include "tomo/metrics.hpp"
#include "tomo/phantom.hpp"
#include "tomo/projector.hpp"
#include "tomo/recon.hpp"

using namespace alsflow;

int main() {
  std::printf("=== case study 2: 2020 proppant dataset, reprocessed ===\n\n");
  const std::size_t n = 64;
  const std::size_t n_angles = 128;

  // The "archived raw data": a propped fracture in shale.
  tomo::Volume truth = tomo::proppant_phantom(n, 2020);

  // Reconstruct the whole stack in one parallel pass.
  tomo::Geometry geo{n_angles, n, -1.0};
  std::vector<tomo::Image> sinos;
  sinos.reserve(n);
  for (std::size_t z = 0; z < n; ++z) {
    sinos.push_back(tomo::forward_project(truth.slice_image(z), geo));
  }
  tomo::Volume recon = tomo::reconstruct_volume(
      sinos, geo, n,
      {tomo::Algorithm::FBP, tomo::FilterKind::SheppLogan, 0, true});
  std::printf("reconstruction rmse vs archive ground truth: %.4f\n\n",
              tomo::rmse(truth, recon));

  // Three-phase segmentation by thresholding the attenuation histogram:
  // void (< 0.25) / shale (~0.5) / ceramic proppant (~1.0).
  std::size_t voids = 0, shale = 0, proppant = 0;
  for (float v : recon.span()) {
    if (v < 0.25f) {
      ++voids;
    } else if (v < 0.75f) {
      ++shale;
    } else {
      ++proppant;
    }
  }
  const double total = double(recon.size());
  std::printf("phase segmentation:\n");
  std::printf("  void/fracture: %5.1f%%\n", 100.0 * voids / total);
  std::printf("  shale matrix:  %5.1f%%\n", 100.0 * shale / total);
  std::printf("  proppant:      %5.1f%%\n\n", 100.0 * proppant / total);

  // Fracture metrics: proppant keeps the fracture open; measure the
  // propped aperture as the void+proppant fraction in the central plane.
  std::size_t open_voxels = 0, plane_voxels = 0;
  for (std::size_t z = 0; z < n; ++z) {
    for (std::size_t y = 0; y < n; ++y) {
      ++plane_voxels;
      if (recon.at(z, y, n / 2) < 0.25f || recon.at(z, y, n / 2) >= 0.75f) {
        ++open_voxels;
      }
    }
  }
  std::printf("central-plane open fraction (propped aperture): %.2f\n",
              double(open_voxels) / double(plane_voxels));
  std::printf("proppant surface density: %.3f (contact/embedment proxy)\n\n",
              tomo::surface_density(recon, 0.75f));

  // Access products: multiscale pyramid + presentation exports.
  access::TiledService tiled;
  tiled.register_volume("proppant-2020",
                        std::make_shared<data::MultiscaleVolume>(
                            data::MultiscaleVolume::build(recon, 3)));
  auto overview = tiled.preview("proppant-2020", 2);  // coarse yz cut
  auto detail = tiled.slice("proppant-2020", 0, 2, n / 2);

  std::printf("fracture cross-section (x = center):\n%s\n",
              access::ascii_render(detail.value(), 56).c_str());

  (void)access::write_pgm("proppant_overview.pgm", overview.value());
  (void)access::write_pgm("proppant_detail.pgm", detail.value());
  auto stack = data::write_tiff_stack("proppant_tiff", recon);
  std::printf("exports: proppant_overview.pgm, proppant_detail.pgm, "
              "proppant_tiff/ (%zu slices for Dragonfly/VR texturing)\n",
              stack.ok() ? stack.value() : 0);
  return 0;
}
