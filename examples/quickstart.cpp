// Quickstart: scan a synthetic specimen and reconstruct it, exercising the
// tomo public API end to end (phantom -> projections -> preprocessing ->
// FBP reconstruction -> quality metrics).
//
// The full-facility examples (streaming_preview, multi_facility_campaign,
// feather_morphology) build on this with the orchestration stack.
#include <cstdio>

#include "tomo/metrics.hpp"
#include "tomo/phantom.hpp"
#include "tomo/preprocess.hpp"
#include "tomo/projector.hpp"
#include "tomo/recon.hpp"

using namespace alsflow;

int main() {
  const std::size_t n = 128;
  const std::size_t n_angles = 180;

  std::printf("=== alsflow quickstart: simulate + reconstruct a scan ===\n");

  // 1. Ground-truth specimen.
  tomo::Image phantom = tomo::shepp_logan(n);

  // 2. Acquire: analytic projections (what the detector would measure).
  tomo::Geometry geo{n_angles, n, -1.0};
  tomo::Image sino = tomo::analytic_sinogram(tomo::shepp_logan_ellipses(), geo);
  std::printf("acquired %zu projections x %zu detector bins\n", geo.n_angles,
              geo.n_det);

  // 3. Preprocess: ring removal + rotation-axis search.
  tomo::remove_rings(sino);
  const double center = tomo::find_center(
      sino, geo, geo.center_or_default() - 4, geo.center_or_default() + 4);
  geo.center = center;
  std::printf("rotation axis found at detector bin %.2f\n", center);

  // 4. Reconstruct with each algorithm and compare quality.
  struct Row {
    const char* name;
    tomo::ReconOptions opts;
  };
  const Row rows[] = {
      {"fbp/shepp-logan", {tomo::Algorithm::FBP, tomo::FilterKind::SheppLogan, 0, false}},
      {"fbp/ramp", {tomo::Algorithm::FBP, tomo::FilterKind::Ramp, 0, false}},
      {"gridrec", {tomo::Algorithm::Gridrec, tomo::FilterKind::SheppLogan, 0, false}},
      {"sirt x30", {tomo::Algorithm::SIRT, tomo::FilterKind::SheppLogan, 30, true}},
  };
  std::printf("\n%-18s %8s %8s %8s\n", "algorithm", "rmse", "psnr", "corr");
  for (const auto& row : rows) {
    tomo::Image recon = tomo::reconstruct_slice(sino, geo, n, row.opts);
    std::printf("%-18s %8.4f %8.2f %8.4f\n", row.name,
                tomo::rmse(phantom, recon), tomo::psnr(phantom, recon),
                tomo::pearson_correlation(phantom, recon));
  }

  std::printf("\nDone. Next: examples/streaming_preview for the <10 s "
              "streaming branch.\n");
  return 0;
}
