// Case study 1 (Figure 1): chicken vs sandgrouse feather morphology.
//
// Scans two procedural feather specimens, reconstructs them with the
// file-based pipeline's algorithm, registers everything in the metadata
// catalogue, serves both through the Tiled access service, and prints the
// side-by-side comparison that motivates the case study.
#include <cstdio>
#include <memory>
#include <vector>

#include "access/render.hpp"
#include "access/tiled.hpp"
#include "catalog/scicat.hpp"
#include "data/multiscale.hpp"
#include "tomo/metrics.hpp"
#include "tomo/phantom.hpp"
#include "tomo/preprocess.hpp"
#include "tomo/projector.hpp"
#include "tomo/recon.hpp"

using namespace alsflow;

namespace {

tomo::Volume reconstruct(const tomo::Volume& specimen, std::size_t n_angles) {
  const std::size_t n = specimen.nx();
  tomo::Geometry geo{n_angles, n, -1.0};
  std::vector<tomo::Image> sinos;
  sinos.reserve(specimen.nz());
  for (std::size_t z = 0; z < specimen.nz(); ++z) {
    tomo::Image sino = tomo::forward_project(specimen.slice_image(z), geo);
    tomo::remove_rings(sino);
    sinos.push_back(std::move(sino));
  }
  tomo::ReconOptions opts;
  opts.algorithm = tomo::Algorithm::Gridrec;
  opts.filter = tomo::FilterKind::SheppLogan;
  return tomo::reconstruct_volume(sinos, geo, n, opts);
}

}  // namespace

int main() {
  std::printf("=== case study 1: feather morphology comparison ===\n\n");
  const std::size_t n = 64;
  const float thr = 0.3f;

  catalog::SciCatalog scicat;
  access::TiledService tiled;

  struct Specimen {
    const char* name;
    tomo::FiberStyle style;
  };
  const Specimen specimens[] = {
      {"chicken", tomo::FiberStyle::Straight},
      {"sandgrouse", tomo::FiberStyle::Coiled},
  };

  struct Row {
    std::string name;
    double surface, dispersion, porosity;
  };
  std::vector<Row> rows;

  for (const auto& s : specimens) {
    tomo::Volume truth = tomo::fiber_phantom(n, s.style, 101);
    tomo::Volume recon = reconstruct(truth, 96);

    auto raw_pid = scicat.ingest(catalog::DatasetType::Raw,
                                 std::string("/raw/") + s.name + ".ah5",
                                 "als-data", 0.0,
                                 {{"sample", s.name}, {"technique", "uCT"}});
    scicat.ingest(catalog::DatasetType::Derived,
                  std::string("/recon/") + s.name + ".zarr", "als-data", 60.0,
                  {{"sample", s.name}, {"algorithm", "gridrec"}}, raw_pid);

    tiled.register_volume(s.name,
                          std::make_shared<data::MultiscaleVolume>(
                              data::MultiscaleVolume::build(recon, 3)));

    rows.push_back({s.name, tomo::surface_density(recon, thr),
                    tomo::vertical_dispersion(recon, thr),
                    tomo::shell_porosity(recon, thr, 0.15, 0.85)});

    auto slice = tiled.slice(s.name, 0, 0, n / 2);
    std::printf("[%s] central slice:\n%s\n", s.name,
                access::ascii_render(slice.value(), 48).c_str());
  }

  std::printf("%-12s %12s %12s %12s\n", "specimen", "surface", "dispersion",
              "porosity");
  for (const auto& r : rows) {
    std::printf("%-12s %12.3f %12.4f %12.4f\n", r.name.c_str(), r.surface,
                r.dispersion, r.porosity);
  }
  std::printf("\nsandgrouse coiled barbules: %s\n",
              rows[1].dispersion > rows[0].dispersion
                  ? "detected (higher z-dispersion = water-storing coils)"
                  : "NOT detected");

  std::printf("\ncatalogue: %zu datasets; feather search hits: %zu\n",
              scicat.size(), scicat.search("technique", "uCT").size());
  std::printf("tiled service served %s over %zu requests\n",
              human_bytes(tiled.bytes_served()).c_str(), tiled.requests());
  return 0;
}
