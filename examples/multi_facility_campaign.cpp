// A full beamtime shift through the multi-facility world.
//
// Simulates eight hours at the microtomography beamline: scans every few
// minutes, streaming previews for the users watching live, dual-facility
// file-based reconstruction for every dataset, scheduled pruning, and a
// loaded Perlmutter in the background. Ends with the operations report a
// beamline scientist would pull up the next morning — and, with telemetry
// enabled, dumps the whole shift as a Chrome trace (open
// campaign_trace.json in chrome://tracing or https://ui.perfetto.dev to
// see the Fig. 1 pipeline as a flame chart) plus Prometheus/JSON metric
// snapshots.
#include <cstdio>
#include <fstream>

#include "common/telemetry.hpp"
#include "monitor/health_monitor.hpp"
#include "monitor/trace_assembler.hpp"
#include "pipeline/campaign.hpp"
#include "pipeline/facility.hpp"

using namespace alsflow;

int main() {
  std::printf("=== one shift at beamline 8.3.2 (simulated) ===\n\n");

  telemetry::global().set_enabled(true);

  pipeline::FacilityConfig config;
  config.seed = 2026;
  pipeline::Facility facility(config);

  // Pre-flight flow-graph validation: cycles, unreachable tasks, missing
  // retry policies / idempotency keys, undeclared pools — all rejected in
  // milliseconds, before a single scan commits beam time to a bad graph.
  auto issues = facility.flows().validate();
  if (!issues.empty()) {
    for (const auto& iss : issues) {
      std::fprintf(stderr, "flow validation: %s\n", iss.render().c_str());
    }
    return 1;
  }
  std::printf("pre-flight: %zu flows validated clean\n\n",
              facility.flows().registered_flows());

  // Live health monitoring for the shift: the stock SLO set (link
  // slowdown, transfer goodput/reliability, queue wait, flow completion,
  // scan end-to-end, first-slice latency) plus a watermark canary on the
  // run database. Installing the sink is all the wiring there is — every
  // instrumented service emits MonitorEvents once observing() is true.
  monitor::HealthMonitor::Config mon_cfg;
  mon_cfg.capture_logs = false;  // the example owns its stderr
  monitor::HealthMonitor mon(mon_cfg);
  mon.add_default_slos();
  mon.add_watermark("run_db_task_records", "run_db", "orchestrate", [&] {
    return double(facility.run_db().task_records().size());
  });
  mon.install();

  facility.start_background_load(hours(20));
  facility.start_pruning(hours(12));

  pipeline::CampaignConfig campaign;
  campaign.duration = hours(8);
  campaign.scan_interval_mean = 270.0;
  campaign.streaming_fraction = 0.7;
  campaign.seed = 99;
  auto report = pipeline::run_campaign(facility, campaign);

  std::printf("shift summary\n");
  std::printf("  scans: %zu started, %zu completed end-to-end\n",
              report.scans_started, report.scans_completed);
  std::printf("  raw data: %s\n", human_bytes(report.raw_bytes).c_str());
  std::printf("  streaming previews: %zu, median latency %.1f s\n\n",
              facility.streaming().previews_delivered(),
              report.streaming_latency.median);

  std::printf("flow performance (seconds; N mean+/-sd median [min,max])\n");
  std::printf("  new_file_832:     %s\n", report.new_file.row(0).c_str());
  std::printf("  nersc_recon_flow: %s\n", report.nersc_recon.row(0).c_str());
  std::printf("  alcf_recon_flow:  %s\n\n", report.alcf_recon.row(0).c_str());

  // Stage-level breakdown (the view whole-flow durations hide): where the
  // time goes inside each flow run.
  auto& db = facility.run_db();
  for (const char* flow :
       {"new_file_832", "nersc_recon_flow", "alcf_recon_flow"}) {
    std::printf("per-task breakdown: %s\n", flow);
    for (const auto& task : db.task_names(flow)) {
      auto q = db.task_duration_quantiles(flow, task);
      std::printf("  %-24s %s  p50/p95/p99 %.1f/%.1f/%.1f\n", task.c_str(),
                  db.task_duration_summary(flow, task).row(0).c_str(), q.p50,
                  q.p95, q.p99);
    }
  }
  std::printf("\n");

  std::printf("per-facility compute\n");
  std::size_t rt = 0;
  for (const auto& j : facility.perlmutter().all_jobs()) {
    if (j.spec.qos == hpc::Qos::Realtime) ++rt;
  }
  std::printf("  perlmutter realtime jobs: %zu (busy nodes now: %d/%d)\n",
              rt, facility.perlmutter().busy_nodes(),
              facility.perlmutter().total_nodes());
  std::printf("  polaris functions: %zu (warm workers now: %d/%d)\n\n",
              facility.polaris().history().size(),
              facility.polaris().warm_workers(),
              facility.polaris().n_workers());

  std::printf("data at rest\n");
  for (const auto* ep :
       {&facility.beamline_data(), &facility.cfs(), &facility.eagle()}) {
    std::printf("  %-12s %10s in %4zu files\n", ep->name().c_str(),
                human_bytes(ep->used()).c_str(), ep->file_count());
  }
  std::printf("  catalogue: %zu datasets (raw + derived, with provenance)\n",
              facility.scicat().size());

  // A user pulls up one of their scans.
  auto raws = facility.scicat().search("user", "visiting-user");
  if (!raws.empty()) {
    const auto& rec = raws.front();
    auto derived = facility.scicat().derived_from(rec.pid);
    std::printf("\nexample lineage: %s (%s)\n", rec.pid.c_str(),
                rec.fields.count("scan_id") ? rec.fields.at("scan_id").c_str()
                                            : "?");
    for (const auto& d : derived) {
      std::printf("  -> %s via %s\n", d.source_path.c_str(),
                  d.fields.count("pipeline") ? d.fields.at("pipeline").c_str()
                                             : "?");
    }
  }

  // Operations view: per-scan provenance traces and the shift's SLO
  // scoreboard. Everything below is derived from the same sim-domain
  // span/event stream, so it is byte-identical across re-runs of the same
  // seeds.
  const Seconds shift_end = facility.engine().now();
  mon.sweep(shift_end);

  monitor::ScanTraceAssembler traces(telemetry::global().tracer().spans());
  std::printf("\nper-scan traces (%zu scans; full set in scan_traces.json)\n",
              traces.traces().size());
  std::size_t shown = 0;
  for (const auto& t : traces.traces()) {
    if (shown++ == 5) {
      std::printf("  ... %zu more\n", traces.traces().size() - 5);
      break;
    }
    std::printf("  %s\n", traces.render(t).c_str());
  }
  std::ofstream("scan_traces.json") << traces.json();

  std::printf("\nhealth scores at end of shift\n");
  for (const auto& [target, score] : mon.health_scores(shift_end)) {
    std::printf("  %-16s %.2f\n", target.c_str(), score);
  }
  std::printf("\nSLO summary\n%s", mon.slo_summary(shift_end).c_str());
  auto alerts = mon.alerts();
  std::printf("\nalerts this shift: %zu (%zu still active)\n", alerts.size(),
              mon.active_alerts().size());
  for (const auto& a : alerts) std::printf("  %s\n", a.render().c_str());
  const auto incidents = mon.incidents();
  for (std::size_t i = 0; i < incidents.size(); ++i) {
    char path[64];
    std::snprintf(path, sizeof(path), "incident_%03zu.json", i);
    std::ofstream(path) << incidents[i];
  }
  if (!incidents.empty()) {
    std::printf("  flight-recorder snapshots: incident_000.json .. "
                "incident_%03zu.json\n",
                incidents.size() - 1);
  }

  // Telemetry export: the shift as a span tree + metrics snapshot.
  auto& tel = telemetry::global();
  std::ofstream("campaign_trace.json") << tel.tracer().chrome_trace_json();
  std::ofstream("campaign_metrics.prom") << tel.metrics().prometheus_text();
  std::ofstream("campaign_metrics.json") << tel.metrics().json();
  std::printf("\nmetrics snapshot\n%s", tel.metrics().report().c_str());
  std::printf(
      "\ntelemetry written: campaign_trace.json (%zu spans; open in "
      "chrome://tracing or https://ui.perfetto.dev), "
      "campaign_metrics.prom, campaign_metrics.json, scan_traces.json\n",
      tel.tracer().span_count());
  mon.uninstall();
  return 0;
}
