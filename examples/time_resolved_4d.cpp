// Future-work extension (paper Section 6, "Dynamic and Real-Time
// Analysis"): time-resolved (4-D) experiments as sequences of
// time-stamped volumes.
//
// An in-situ creep experiment on a propped shale fracture (the case-study
// dataset's original science): the fracture closes and the proppant
// embeds over several time steps. Each step is scanned with the streaming
// branch for live feedback, fully reconstructed, converted to a
// multiscale volume, and the physical observable — the propped
// aperture — is tracked through time.
#include <cstdio>
#include <memory>
#include <vector>

#include "access/render.hpp"
#include "access/tiled.hpp"
#include "data/multiscale.hpp"
#include "tomo/metrics.hpp"
#include "tomo/phantom.hpp"
#include "tomo/projector.hpp"
#include "tomo/recon.hpp"

using namespace alsflow;

namespace {

tomo::Volume reconstruct(const tomo::Volume& specimen, std::size_t n_angles) {
  const std::size_t n = specimen.nx();
  tomo::Geometry geo{n_angles, n, -1.0};
  std::vector<tomo::Image> sinos;
  sinos.reserve(specimen.nz());
  for (std::size_t z = 0; z < specimen.nz(); ++z) {
    sinos.push_back(tomo::forward_project(specimen.slice_image(z), geo));
  }
  tomo::ReconOptions opts;
  opts.algorithm = tomo::Algorithm::FBP;
  opts.filter = tomo::FilterKind::SheppLogan;
  return tomo::reconstruct_volume(sinos, geo, n, opts);
}

// Propped aperture: open (void or proppant) fraction in the fracture
// midplane, from the reconstruction.
double propped_aperture(const tomo::Volume& recon) {
  const std::size_t n = recon.nx();
  std::size_t open = 0, total = 0;
  for (std::size_t z = 0; z < n; ++z) {
    for (std::size_t y = 0; y < n; ++y) {
      ++total;
      const float v = recon.at(z, y, n / 2);
      if (v < 0.25f || v >= 0.75f) ++open;
    }
  }
  return double(open) / double(total);
}

}  // namespace

int main() {
  std::printf("=== 4-D time-resolved creep experiment (Sec 6 extension) "
              "===\n\n");
  const std::size_t n = 48;
  const std::size_t n_angles = 96;
  const std::size_t n_steps = 5;

  access::TiledService tiled;
  std::printf("%-6s %16s %16s %14s\n", "step", "propped aperture",
              "shale fraction", "recon rmse");

  double prev_aperture = 1.0;
  bool monotonic = true;
  for (std::size_t step = 0; step < n_steps; ++step) {
    const double t = double(step) / double(n_steps - 1);
    tomo::Volume truth = tomo::proppant_phantom_at(n, 2020, t);
    tomo::Volume recon = reconstruct(truth, n_angles);

    const double aperture = propped_aperture(recon);
    const double shale = tomo::material_fraction(truth, 0.4f) -
                         tomo::material_fraction(truth, 0.75f);
    std::printf("%-6zu %16.3f %16.3f %14.4f\n", step, aperture, shale,
                tomo::rmse(truth, recon));
    // Reconstruction noise allows a small wiggle per step.
    if (aperture > prev_aperture + 0.005) monotonic = false;
    prev_aperture = aperture;

    // Each time step becomes one multiscale volume in the 4-D series.
    tiled.register_volume("creep-t" + std::to_string(step),
                          std::make_shared<data::MultiscaleVolume>(
                              data::MultiscaleVolume::build(recon, 2)));
  }

  std::printf("\n4-D series registered: %zu time-stamped volumes\n",
              tiled.keys().size());
  std::printf("aperture closes with creep: %s\n",
              monotonic && prev_aperture < 0.96 ? "yes" : "no");

  auto first = tiled.slice("creep-t0", 0, 2, n / 2);
  auto last = tiled.slice("creep-t4", 0, 2, n / 2);
  std::printf("\nfracture cross-section, t=0 (left) -> t=1 (right):\n");
  auto a = access::ascii_render(first.value(), 34);
  auto b = access::ascii_render(last.value(), 34);
  // Render side by side.
  std::size_t pa = 0, pb = 0;
  while (pa < a.size() && pb < b.size()) {
    const auto ea = a.find('\n', pa);
    const auto eb = b.find('\n', pb);
    std::printf("%s   |   %s\n", a.substr(pa, ea - pa).c_str(),
                b.substr(pb, eb - pb).c_str());
    pa = ea + 1;
    pb = eb + 1;
  }
  return 0;
}
