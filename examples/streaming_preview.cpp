// Streaming-branch demo: the <10 s preview path, with real pixels.
//
// A synthetic detector acquires a Shepp-Logan specimen; frames fan out
// through the PVA mirror exactly as at the beamline; a streaming
// reconstructor consumes them as they arrive and, at acquisition end,
// produces the three orthogonal preview slices the user sees in ImageJ.
// The slices are rendered to the terminal and written as PGM files.
#include <cstdio>

#include "access/render.hpp"
#include "beamline/detector.hpp"
#include "common/log.hpp"
#include "pipeline/facility.hpp"
#include "tomo/metrics.hpp"
#include "tomo/phantom.hpp"
#include "tomo/streaming.hpp"

using namespace alsflow;

int main() {
  set_log_level(LogLevel::Info);
  std::printf("=== streaming preview: acquire -> mirror -> reconstruct ===\n\n");

  // --- Real-pixel run at laptop scale ---
  const std::size_t n = 64;
  const std::size_t n_angles = 128;
  sim::Engine eng;
  beamline::Detector::Config det_cfg;
  det_cfg.frame_rate = 20.0;
  det_cfg.batch_size = 16;
  beamline::Detector detector(eng, det_cfg);
  net::MirrorServer<beamline::FrameBatch> mirror(eng, detector.ioc_channel(),
                                                 "pva-mirror");
  auto sub = mirror.channel().subscribe();

  data::ScanMetadata scan;
  scan.scan_id = "demo-stream";
  scan.sample_name = "shepp-logan";
  scan.proposal = "DEMO";
  scan.user = "you";
  scan.n_angles = n_angles;
  scan.rows = n;
  scan.cols = n;
  scan.bit_depth = 16;
  scan.exposure_s = 0.05;
  scan.energy_kev = 22.0;
  scan.pixel_um = 0.65;

  auto specimen = std::make_shared<tomo::Volume>(tomo::shepp_logan_3d(n));
  auto acq = detector.acquire_with_pixels(scan, specimen);
  eng.run();
  std::printf("acquired %zu frames in %s simulated time\n", n_angles,
              human_duration(acq.value().acquired_at).c_str());

  tomo::StreamingConfig cfg;
  cfg.geo = tomo::Geometry{n_angles, n, -1.0};
  cfg.n_rows = n;
  tomo::StreamingReconstructor recon(cfg);
  recon.set_reference(detector.reference_dark(scan),
                      detector.reference_flat(scan));
  while (auto batch = sub->queue().try_pop()) {
    for (std::size_t k = 0; k < batch->count; ++k) {
      recon.on_frame(batch->first_angle + k, (*batch->pixels)[k]);
    }
  }
  tomo::OrthoPreview preview = recon.finalize();

  std::printf("\ncentral XY slice (correlation with ground truth: %.3f):\n\n",
              tomo::pearson_correlation(preview.xy,
                                        specimen->slice_image(n / 2)));
  std::printf("%s\n", access::ascii_render(preview.xy, 56).c_str());

  for (auto& [name, img] :
       {std::pair<const char*, tomo::Image&>{"preview_xy.pgm", preview.xy},
        {"preview_xz.pgm", preview.xz},
        {"preview_yz.pgm", preview.yz}}) {
    if (access::write_pgm(name, img).ok()) {
      std::printf("wrote %s\n", name);
    }
  }

  // --- Paper-scale latency through the full facility (modeled) ---
  std::printf("\npaper-scale scan (1969 x 2160 x 2560) through the "
              "facility:\n");
  pipeline::Facility facility;
  data::ScanMetadata big = scan;
  big.scan_id = "paper-scale";
  big.n_angles = 1969;
  big.rows = 2160;
  big.cols = 2560;
  pipeline::ScanOptions options;
  options.streaming = true;
  options.run_nersc = false;
  options.run_alcf = false;
  auto fut = facility.process_scan(big, options);
  facility.engine().run();
  const auto& report = fut.value().streaming;
  std::printf("  preview latency after acquisition: %.1f s (paper: <10 s)\n",
              report->preview_latency());
  return 0;
}
