// Section 4.2.4 ablation: the scheduling policies the paper leans on.
//
//   (a) NERSC realtime QOS vs regular priority — queue wait on a loaded
//       Perlmutter partition.
//   (b) ALCF Globus Compute warm pilots (demand queue) vs cold per-task
//       provisioning — dispatch overhead per reconstruction.
#include <cstdio>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "hpc/cloud.hpp"
#include "hpc/globus_compute.hpp"
#include "hpc/slurm.hpp"
#include "sim/engine.hpp"

using namespace alsflow;
using namespace alsflow::hpc;

namespace {

// Queue waits for 20 reconstruction jobs submitted at 5-minute cadence to
// a loaded cluster, under the given QOS.
Summary queue_waits(Qos qos, std::uint64_t seed) {
  sim::Engine eng;
  SlurmCluster cluster(eng, "perlmutter", 8);
  Rng rng(seed);

  // Saturating background of regular jobs.
  for (int i = 0; i < 400; ++i) {
    JobSpec bg;
    bg.name = "background";
    bg.qos = Qos::Regular;
    bg.duration = rng.exponential(1800.0);
    bg.walltime_limit = bg.duration + hours(2);
    eng.schedule_at(rng.uniform(0.0, hours(10)), [&cluster, bg] {
      cluster.submit(bg);
    });
  }

  std::vector<JobId> recon_jobs;
  for (int i = 0; i < 20; ++i) {
    eng.schedule_at(hours(2) + i * 300.0, [&cluster, &recon_jobs, qos] {
      JobSpec job;
      job.name = "recon";
      job.qos = qos;
      job.duration = 1300.0;
      job.walltime_limit = hours(2);
      recon_jobs.push_back(cluster.submit(job));
    });
  }
  eng.run();

  std::vector<double> waits;
  for (JobId id : recon_jobs) {
    auto info = cluster.info(id);
    if (info.ok() && info.value().state == JobState::Completed) {
      waits.push_back(info.value().queue_wait());
    }
  }
  return summarize(std::move(waits));
}

// Dispatch waits for 20 tasks at 5-minute cadence through a Globus Compute
// endpoint with the given idle-shutdown policy.
Summary dispatch_waits(Seconds idle_shutdown) {
  sim::Engine eng;
  GlobusComputeEndpoint::Tuning tuning;
  tuning.cold_start = 45.0;
  tuning.idle_shutdown = idle_shutdown;
  GlobusComputeEndpoint gc(eng, "polaris", 6, tuning);

  std::vector<sim::Future<FunctionResult>> futures;
  for (int i = 0; i < 20; ++i) {
    eng.schedule_at(i * 300.0, [&gc, &futures] {
      futures.push_back(gc.run({"recon", 1000.0}));
    });
  }
  eng.run();

  std::vector<double> waits;
  for (const auto& f : futures) waits.push_back(f.value().dispatch_wait());
  return summarize(std::move(waits));
}

}  // namespace

int main() {
  std::printf("=== Sec 4.2.4 ablation: scheduling policies ===\n\n");

  std::printf("(a) Perlmutter queue wait for 20 recon jobs, loaded machine\n");
  std::printf("%-12s %s\n", "QOS", "N  mean +/- sd  median  [min, max] (s)");
  auto rt = queue_waits(Qos::Realtime, 17);
  auto reg = queue_waits(Qos::Regular, 17);
  std::printf("%-12s %s\n", "realtime", rt.row(0).c_str());
  std::printf("%-12s %s\n", "regular", reg.row(0).c_str());
  std::printf("realtime cuts median queue wait by %.1fx\n\n",
              reg.median / std::max(rt.median, 1.0));

  std::printf("(b) Globus Compute dispatch wait, warm pilots vs cold\n");
  auto warm = dispatch_waits(600.0);   // demand-queue pilots stay warm
  auto cold = dispatch_waits(0.0);     // every task re-provisions
  std::printf("%-12s %s\n", "warm", warm.row(1).c_str());
  std::printf("%-12s %s\n", "cold", cold.row(1).c_str());
  std::printf("warm pilots cut dispatch latency by %.0fx\n",
              cold.median / std::max(warm.median, 1e-9));

  // (c) Section 6 extension: commercial-cloud burst economics.
  std::printf("\n(c) cloud burst (Sec 6): 20 paper-scale recons at once\n");
  {
    sim::Engine eng;
    CloudBurstAdapter cloud(eng, ComputeModel{});
    std::vector<sim::Future<ReconJobOutcome>> jobs;
    ReconJob job;
    job.nz = 2160;
    job.n = 2560;
    for (int i = 0; i < 20; ++i) jobs.push_back(cloud.run(job));
    eng.run();
    double max_total = 0.0;
    for (const auto& f : jobs) max_total = std::max(max_total, f.value().total());
    const double egress = 20.0 * cloud.egress_cost(74 * GB);
    std::printf("all 20 done in %s (no queue), compute $%.0f + egress "
                "$%.0f = $%.0f\n",
                human_duration(max_total).c_str(), cloud.dollars_spent(),
                egress, cloud.dollars_spent() + egress);
    std::printf("(elastic but metered: the scheduling problem becomes the "
                "economic-policy problem the paper predicts)\n");
  }

  const bool ok = rt.median < reg.median && warm.median < cold.median;
  std::printf("\nshape check: realtime < regular and warm < cold %s\n",
              ok ? "OK" : "VIOLATED");
  return ok ? 0 : 1;
}
