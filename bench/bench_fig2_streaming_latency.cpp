// Figure 2 / Section 5.2 reproduction: the streaming branch delivers a
// three-slice preview in under 10 seconds after acquisition completes.
//
// Paper reference numbers for a 1969 x 2160 x 2560 16-bit scan (~20 GB):
//   * back-projection of the cached dataset on a 4-GPU node: 7-8 s
//   * preview slices returned to the ALS: < 1 s
//
// Two parts:
//  1. Modeled at paper scale through the full facility (frames stream over
//     ESnet during acquisition; finalize charged by the calibrated
//     ComputeModel).
//  2. Real execution at laptop scale: the actual StreamingReconstructor
//     kernels on synthetic detector frames, with measured wall-clock,
//     demonstrating the same overlap property.
#include <chrono>
#include <cstdio>

#include "pipeline/campaign.hpp"
#include "pipeline/facility.hpp"
#include "tomo/metrics.hpp"
#include "tomo/phantom.hpp"
#include "tomo/projector.hpp"
#include "tomo/streaming.hpp"

using namespace alsflow;

namespace {

data::ScanMetadata paper_scan(std::size_t n_angles, std::size_t rows,
                              std::size_t cols) {
  data::ScanMetadata m;
  m.scan_id = "stream-" + std::to_string(n_angles);
  m.sample_name = "reference";
  m.proposal = "ALS-11532";
  m.user = "visiting-user";
  m.n_angles = n_angles;
  m.rows = rows;
  m.cols = cols;
  m.bit_depth = 16;
  m.exposure_s = 0.05;
  m.energy_kev = 25.0;
  m.pixel_um = 0.65;
  return m;
}

double wall_seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  std::printf("=== Fig 2 / Sec 5.2: streaming preview latency ===\n\n");

  // --- Part 1: paper scale, modeled through the full facility ---
  std::printf("paper-scale scans through the facility (modeled timing):\n");
  std::printf("%-10s %-10s %10s %10s %10s %10s\n", "angles", "raw",
              "cache", "recon(s)", "return(s)", "total(s)");
  for (std::size_t n_angles : {969u, 1969u, 2969u}) {
    pipeline::Facility facility;
    auto scan = paper_scan(n_angles, 2160, 2560);
    const Bytes raw = scan.raw_bytes();
    pipeline::ScanOptions options;
    options.streaming = true;
    options.run_nersc = false;
    options.run_alcf = false;
    auto fut = facility.process_scan(scan, options);
    facility.engine().run();
    const auto& rep = fut.value().streaming;
    std::printf("%-10zu %-10s %10s %10.2f %10.2f %10.2f %s\n", n_angles,
                human_bytes(raw).c_str(), human_bytes(rep->cached_bytes).c_str(),
                rep->recon_done_at - rep->last_frame_at,
                rep->preview_at - rep->recon_done_at, rep->preview_latency(),
                rep->preview_latency() < 10.0 ? "< 10 s OK" : "MISSED");
  }
  std::printf("(paper: 7-8 s reconstruction + <1 s return for 1969 angles)\n\n");

  // --- Part 2: real kernels at reduced scale ---
  std::printf("real StreamingReconstructor execution (scaled down):\n");
  std::printf("%-8s %-8s %12s %12s %12s %8s\n", "n", "angles", "ingest(s)",
              "finalize(s)", "total(s)", "corr");
  for (std::size_t n : {32u, 64u, 96u}) {
    const std::size_t n_angles = 2 * n;
    tomo::Volume specimen = tomo::shepp_logan_3d(n);
    tomo::Geometry geo{n_angles, n, -1.0};

    // Synthesize raw frames (counts with dark/flat physics).
    std::vector<tomo::Image> sinos(n);
    for (std::size_t z = 0; z < n; ++z) {
      sinos[z] = tomo::forward_project(specimen.slice_image(z), geo);
    }
    tomo::Image dark(n, n, 50.0f), flat(n, n, 10050.0f);

    tomo::StreamingConfig cfg;
    cfg.geo = geo;
    cfg.n_rows = n;
    tomo::StreamingReconstructor sr(cfg);
    sr.set_reference(dark, flat);

    // Ingest: per-frame normalize+filter, the work that overlaps
    // acquisition in production.
    auto t0 = std::chrono::steady_clock::now();
    tomo::Image frame(n, n);
    for (std::size_t a = 0; a < n_angles; ++a) {
      for (std::size_t z = 0; z < n; ++z) {
        for (std::size_t t = 0; t < n; ++t) {
          frame.at(z, t) =
              50.0f + 10000.0f * std::exp(-double(sinos[z].at(a, t)));
        }
      }
      sr.on_frame(a, frame);
    }
    const double ingest = wall_seconds(t0);

    // Finalize: the only post-acquisition cost.
    t0 = std::chrono::steady_clock::now();
    auto preview = sr.finalize();
    const double finalize = wall_seconds(t0);

    const double corr =
        tomo::pearson_correlation(preview.xy, specimen.slice_image(n / 2));
    std::printf("%-8zu %-8zu %12.3f %12.3f %12.3f %8.3f\n", n, n_angles,
                ingest, finalize, ingest + finalize, corr);
  }
  std::printf("(finalize << ingest: the preview cost is hidden under "
              "acquisition, the streamtomocupy property)\n");
  return 0;
}
