// Serving front-end load benchmark: cache effectiveness, singleflight
// coalescing, and overload behaviour of serve::Frontend.
//
// Three phases, each with an acceptance line:
//  1. cold vs hot  — p50 latency of cache hits must be >= 10x better than
//     cold renders (the whole point of the slice cache).
//  2. coalesce     — a concurrent burst of identical requests performs
//     exactly one render; everyone else hits or coalesces.
//  3. overload     — ~2x over-admission sheds instead of growing queues:
//     p99 queue wait of *served* requests stays bounded by max_queue_wait
//     and the queue never exceeds its cap.
//
// Results land in BENCH_serve_load.json for machine consumption.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "access/tiled.hpp"
#include "data/multiscale.hpp"
#include "serve/frontend.hpp"
#include "tomo/phantom.hpp"

using namespace alsflow;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const auto idx = std::size_t(p * double(xs.size() - 1));
  return xs[idx];
}

serve::SliceRequest req(const std::string& tenant, std::size_t index,
                        int axis = 2) {
  serve::SliceRequest r;
  r.tenant = tenant;
  r.volume = "vol";
  r.level = 0;
  r.axis = axis;  // axis 2 is the strided (slowest) render path
  r.index = index;
  return r;
}

}  // namespace

int main() {
  std::printf("=== serve::Frontend load benchmark ===\n\n");
  const std::size_t n = 192;
  std::printf("building %zu^3 multiscale volume...\n", n);
  auto volume = std::make_shared<const data::MultiscaleVolume>(
      data::MultiscaleVolume::build(tomo::shepp_logan_3d(n), 3, 32));

  // --- Phase 1: cold vs hot p50 -------------------------------------------
  double cold_p50 = 0.0, hot_p50 = 0.0;
  {
    access::TiledService tiled;
    tiled.register_volume("vol", volume);
    serve::FrontendConfig cfg;
    cfg.cache_bytes = 256 * MiB;
    cfg.max_queue_wait = 0.0;
    cfg.degrade_levels = 0;
    serve::Frontend fe(tiled, cfg);

    std::vector<double> cold, hot;
    for (std::size_t i = 0; i < 128; ++i) {
      const double t0 = now_s();
      auto r = fe.get(req("viewer", i));
      if (r.ok()) cold.push_back(now_s() - t0);
    }
    for (std::size_t i = 0; i < 128; ++i) {
      const double t0 = now_s();
      auto r = fe.get(req("viewer", i));
      if (r.ok()) hot.push_back(now_s() - t0);
    }
    cold_p50 = percentile(cold, 0.5);
    hot_p50 = percentile(hot, 0.5);
    const auto cs = fe.cache_stats();
    std::printf("cold p50 %8.1f us   hot p50 %8.1f us   speedup %6.1fx"
                "   (hits %zu / misses %zu)   %s\n",
                cold_p50 * 1e6, hot_p50 * 1e6,
                hot_p50 > 0 ? cold_p50 / hot_p50 : 0.0, cs.hits, cs.misses,
                cold_p50 >= 10.0 * hot_p50 ? ">= 10x OK" : "MISSED");
  }

  // --- Phase 2: duplicate burst coalesces to one render -------------------
  std::size_t dup_misses = 0, dup_hits = 0, dup_coalesced = 0;
  constexpr std::size_t kDupes = 16;
  {
    access::TiledService tiled;
    tiled.register_volume("vol", volume);
    serve::FrontendConfig cfg;
    cfg.concurrency = 4;
    cfg.cache_bytes = 256 * MiB;
    cfg.max_queue_wait = 0.0;
    cfg.degrade_levels = 0;
    cfg.start_paused = true;  // queue the whole burst, then release at once
    serve::Frontend fe(tiled, cfg);

    std::vector<std::shared_ptr<serve::Ticket>> tickets;
    for (std::size_t i = 0; i < kDupes; ++i) {
      tickets.push_back(fe.submit(req("viewer", 91)));  // identical key
    }
    fe.resume();
    for (auto& t : tickets) (void)t->wait();
    const auto cs = fe.cache_stats();
    dup_misses = cs.misses;
    dup_hits = cs.hits;
    dup_coalesced = cs.coalesced;
    std::printf("dupe burst of %zu: renders %zu, coalesced %zu, hits %zu"
                "   %s\n",
                kDupes, cs.misses, cs.coalesced, cs.hits,
                cs.misses == 1 && cs.coalesced + cs.hits == kDupes - 1
                    ? "1 render OK"
                    : "MISSED");
  }

  // --- Phase 3: 2x over-admission sheds, queue wait stays bounded ---------
  double p50_wait = 0.0, p99_wait = 0.0;
  std::size_t served = 0, shed = 0, max_depth = 0;
  const Seconds kMaxWait = 0.05;
  {
    access::TiledService tiled;
    tiled.register_volume("vol", volume);
    serve::FrontendConfig cfg;
    cfg.concurrency = 2;
    cfg.max_queue = 64;
    cfg.per_tenant_queue = 64;
    cfg.cache_bytes = 1 * MiB;  // small: keep the renders coming
    cfg.max_queue_wait = kMaxWait;
    cfg.degrade_levels = 0;
    serve::Frontend fe(tiled, cfg);

    // Open-loop offered load from 4 client threads, distinct slices so
    // every admitted request is a real render.
    constexpr std::size_t kClients = 4;
    constexpr std::size_t kPerClient = 500;
    std::vector<std::vector<std::shared_ptr<serve::Ticket>>> all(kClients);
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (std::size_t i = 0; i < kPerClient; ++i) {
          all[c].push_back(
              fe.submit(req("viewer-" + std::to_string(c),
                            (c * kPerClient + i) % n, int(i % 3))));
        }
      });
    }
    for (auto& c : clients) c.join();
    fe.drain();

    std::vector<double> waits;
    for (auto& tickets : all) {
      for (auto& t : tickets) {
        auto r = t->wait();
        if (r.ok()) waits.push_back(r.value().queue_wait);
      }
    }
    const auto st = fe.stats();
    served = st.served;
    shed = st.shed + st.rejected + st.deadline_shed;
    max_depth = st.max_queue_depth;
    p50_wait = percentile(waits, 0.5);
    p99_wait = percentile(waits, 0.99);
    std::printf("overload: offered %zu, served %zu, shed %zu, "
                "max depth %zu/%zu\n",
                kClients * kPerClient, served, shed, max_depth,
                cfg.max_queue);
    std::printf("queue wait p50 %6.2f ms  p99 %6.2f ms (cap %4.0f ms)   %s\n",
                p50_wait * 1e3, p99_wait * 1e3, kMaxWait * 1e3,
                p99_wait <= kMaxWait && max_depth <= cfg.max_queue && shed > 0
                    ? "bounded OK"
                    : "MISSED");
  }

  // --- JSON record --------------------------------------------------------
  if (FILE* f = std::fopen("BENCH_serve_load.json", "w")) {
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"volume_n\": %zu,\n", n);
    std::fprintf(f, "  \"cold_p50_s\": %.9f,\n", cold_p50);
    std::fprintf(f, "  \"hot_p50_s\": %.9f,\n", hot_p50);
    std::fprintf(f, "  \"hot_speedup\": %.2f,\n",
                 hot_p50 > 0 ? cold_p50 / hot_p50 : 0.0);
    std::fprintf(f, "  \"dupe_burst\": %zu,\n", kDupes);
    std::fprintf(f, "  \"dupe_renders\": %zu,\n", dup_misses);
    std::fprintf(f, "  \"dupe_coalesced\": %zu,\n", dup_coalesced);
    std::fprintf(f, "  \"dupe_hits\": %zu,\n", dup_hits);
    std::fprintf(f, "  \"overload_served\": %zu,\n", served);
    std::fprintf(f, "  \"overload_shed\": %zu,\n", shed);
    std::fprintf(f, "  \"overload_max_queue_depth\": %zu,\n", max_depth);
    std::fprintf(f, "  \"queue_wait_p50_s\": %.9f,\n", p50_wait);
    std::fprintf(f, "  \"queue_wait_p99_s\": %.9f,\n", p99_wait);
    std::fprintf(f, "  \"queue_wait_cap_s\": %.3f\n", double(kMaxWait));
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_serve_load.json\n");
  }
  return 0;
}
