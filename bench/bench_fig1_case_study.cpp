// Figure 1 / case study 1 reproduction: chicken vs sandgrouse feather
// morphology, end to end through the reconstruction library.
//
// The sandgrouse evolved coiled, water-storing barbules; the chicken's are
// straight. The paper's point: "mount, scan, reconstruct, compare" now
// takes ~20 minutes instead of hours. We scan both procedural specimens,
// reconstruct them, and quantify the morphological difference the
// beamline users see in Figure 1 — then time the same comparison on the
// historical workstation workflow.
#include <cstdio>
#include <vector>

#include "hpc/compute_model.hpp"
#include "tomo/metrics.hpp"
#include "tomo/phantom.hpp"
#include "tomo/projector.hpp"
#include "tomo/preprocess.hpp"
#include "tomo/recon.hpp"

using namespace alsflow;

namespace {

struct Morphology {
  double material = 0.0;
  double shell_porosity_v = 0.0;
  double surface = 0.0;
  double dispersion = 0.0;
};

Morphology measure(const tomo::Volume& vol, float threshold) {
  Morphology m;
  m.material = tomo::material_fraction(vol, threshold);
  m.shell_porosity_v = tomo::shell_porosity(vol, threshold, 0.15, 0.85);
  m.surface = tomo::surface_density(vol, threshold);
  m.dispersion = tomo::vertical_dispersion(vol, threshold);
  return m;
}

// Scan + reconstruct a specimen with the file-based pipeline settings.
tomo::Volume scan_and_reconstruct(const tomo::Volume& specimen,
                                  std::size_t n_angles) {
  const std::size_t n = specimen.nx();
  tomo::Geometry geo{n_angles, n, -1.0};
  std::vector<tomo::Image> sinos;
  sinos.reserve(specimen.nz());
  for (std::size_t z = 0; z < specimen.nz(); ++z) {
    tomo::Image sino = tomo::forward_project(specimen.slice_image(z), geo);
    tomo::remove_rings(sino);
    sinos.push_back(std::move(sino));
  }
  tomo::ReconOptions opts;
  opts.algorithm = tomo::Algorithm::Gridrec;
  opts.filter = tomo::FilterKind::SheppLogan;
  return tomo::reconstruct_volume(sinos, geo, n, opts);
}

}  // namespace

int main() {
  std::printf("=== Fig 1: feather morphology comparison ===\n\n");
  const std::size_t n = 64;
  const std::size_t n_angles = 96;
  const float threshold = 0.3f;

  tomo::Volume chicken =
      tomo::fiber_phantom(n, tomo::FiberStyle::Straight, 101);
  tomo::Volume sandgrouse =
      tomo::fiber_phantom(n, tomo::FiberStyle::Coiled, 101);

  tomo::Volume chicken_recon = scan_and_reconstruct(chicken, n_angles);
  tomo::Volume sandgrouse_recon = scan_and_reconstruct(sandgrouse, n_angles);

  std::printf("reconstruction fidelity (vs ground truth):\n");
  std::printf("  chicken:    rmse %.4f\n", tomo::rmse(chicken, chicken_recon));
  std::printf("  sandgrouse: rmse %.4f\n\n",
              tomo::rmse(sandgrouse, sandgrouse_recon));

  auto c = measure(chicken_recon, threshold);
  auto s = measure(sandgrouse_recon, threshold);
  std::printf("morphology from reconstructed volumes:\n");
  std::printf("  %-26s %10s %12s\n", "metric", "chicken", "sandgrouse");
  std::printf("  %-26s %10.4f %12.4f\n", "material fraction", c.material,
              s.material);
  std::printf("  %-26s %10.4f %12.4f\n", "barbule-shell porosity",
              c.shell_porosity_v, s.shell_porosity_v);
  std::printf("  %-26s %10.3f %12.3f\n", "surface density", c.surface,
              s.surface);
  std::printf("  %-26s %10.4f %12.4f\n", "vertical dispersion (coiling)",
              c.dispersion, s.dispersion);

  // The discriminating signature: coiled barbules disperse along z and
  // carry more surface per unit volume (water storage).
  const bool signature = s.dispersion > c.dispersion && s.surface > c.surface;
  std::printf("\ncoiled-barbule signature detected: %s\n",
              signature ? "YES (sandgrouse)" : "NO");

  // Workflow timing at paper scale (modeled).
  hpc::ComputeModel model;
  const Seconds scan_time = 2.0 * minutes(3);  // two 3-minute scans
  const Seconds modern =
      scan_time + 2.0 * model.recon_seconds(hpc::Device::CpuNode128,
                                            tomo::Algorithm::Gridrec, 2160,
                                            2560) / 2.0;  // parallel sites
  const Seconds historical =
      scan_time + 2.0 * model.recon_seconds(hpc::Device::Workstation,
                                            tomo::Algorithm::Gridrec, 2160,
                                            2560);
  std::printf("\nmount-scan-reconstruct-compare, both specimens:\n");
  std::printf("  modern pipeline:      %s (paper: ~20 minutes)\n",
              human_duration(modern).c_str());
  std::printf("  historical workflow:  %s (paper: hours)\n",
              human_duration(historical).c_str());
  return signature ? 0 : 1;
}
