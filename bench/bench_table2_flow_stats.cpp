// Table 2 reproduction: summary statistics of the last 100 successful
// file-based flow runs in production.
//
// Paper (durations in seconds):
//   new_file_832      100   120 +/- 171    56   [30, 676]
//   nersc_recon_flow  100  1525 +/- 464  1665   [354, 2351]
//   alcf_recon_flow   100  1151 +/- 246  1114   [710, 1965]
//
// We drive a multi-shift campaign with the production scan-size mix
// (cropped MB test scans through 30+ GB full scans, rare very large ones)
// against a realistically loaded Perlmutter, then issue the same run-DB
// query the authors issued against their Prefect server.
#include <cstdio>

#include "pipeline/campaign.hpp"
#include "pipeline/facility.hpp"

using namespace alsflow;

int main() {
  std::printf("=== Table 2: last 100 successful file-based flow runs ===\n\n");

  pipeline::FacilityConfig config;
  config.seed = 42;
  config.background_utilization = 0.9;
  config.background_job_mean = 900.0;
  pipeline::Facility facility(config);
  facility.start_background_load(hours(40));
  // Warm the background queue before beam comes on.
  facility.engine().run_until(hours(2));

  pipeline::CampaignConfig campaign;
  campaign.duration = hours(10);
  campaign.scan_interval_mean = 270.0;  // one scan every 3-5 minutes
  campaign.streaming_fraction = 0.5;
  campaign.seed = 7;
  auto report = pipeline::run_campaign(facility, campaign);

  std::printf("campaign: %zu scans, %s raw data ingested\n\n",
              report.scans_completed, human_bytes(report.raw_bytes).c_str());

  std::printf("%-18s %4s %16s %7s %16s\n", "Flow", "N", "Mean +/- SD",
              "Med.", "Range");
  auto row = [](const char* name, const Summary& s) {
    std::printf("%-18s %4zu %7.0f +/- %-6.0f %6.0f  [%.0f, %.0f]\n", name,
                s.n, s.mean, s.stddev, s.median, s.min, s.max);
  };
  row("new_file_832", report.new_file);
  row("nersc_recon_flow", report.nersc_recon);
  row("alcf_recon_flow", report.alcf_recon);

  std::printf("\npaper reference:\n");
  std::printf("%-18s %4s %16s %7s %16s\n", "Flow", "N", "Mean +/- SD", "Med.",
              "Range");
  std::printf("%-18s %4d %7d +/- %-6d %6d  [%d, %d]\n", "new_file_832", 100,
              120, 171, 56, 30, 676);
  std::printf("%-18s %4d %7d +/- %-6d %6d  [%d, %d]\n", "nersc_recon_flow",
              100, 1525, 464, 1665, 354, 2351);
  std::printf("%-18s %4d %7d +/- %-6d %6d  [%d, %d]\n", "alcf_recon_flow",
              100, 1151, 246, 1114, 710, 1965);

  std::printf("\nsuccess rates: nersc %.2f, alcf %.2f\n",
              report.nersc_success_rate, report.alcf_success_rate);

  // Shape assertions the reproduction must preserve.
  const bool ordering_holds =
      report.new_file.median < report.alcf_recon.median &&
      report.alcf_recon.median < report.nersc_recon.median;
  const bool heavy_tail = report.new_file.mean > report.new_file.median;
  std::printf("\nshape checks: flow ordering %s, new_file heavy tail %s\n",
              ordering_holds ? "OK" : "VIOLATED",
              heavy_tail ? "OK" : "VIOLATED");
  return ordering_holds && heavy_tail ? 0 : 1;
}
