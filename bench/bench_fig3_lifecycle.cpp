// Figure 3 / Section 4.3 reproduction: the data lifecycle across the five
// operational layers at production cadence.
//
// Paper figures: ~30 GB raw per scan (variable), one scan every 3-5
// minutes (12-20 scans/hour), 0.5-5 TB/day, tiered storage with
// age-based pruning (beamline: days-weeks; CFS: months-years; HPSS:
// indefinite).
//
// We run a full production day and account every layer: acquisition
// volume, movement bytes per link, compute hours per facility, access
// products, and storage occupancy.
#include <cstdio>

#include "pipeline/campaign.hpp"
#include "pipeline/facility.hpp"

using namespace alsflow;

int main() {
  std::printf("=== Fig 3 / Sec 4.3: one production day, all layers ===\n\n");

  pipeline::FacilityConfig config;
  config.seed = 11;
  pipeline::Facility facility(config);
  facility.start_background_load(hours(30));
  facility.start_pruning(hours(12));

  pipeline::CampaignConfig campaign;
  campaign.duration = hours(24);
  campaign.scan_interval_mean = 265.0;  // 3-5 minutes between scans
  campaign.streaming_fraction = 0.5;
  campaign.seed = 23;
  auto report = pipeline::run_campaign(facility, campaign);

  const double day_tb = double(report.raw_bytes) / double(TB);
  std::printf("Acquisition layer\n");
  std::printf("  scans completed:      %zu (%.1f scans/hour)\n",
              report.scans_completed, double(report.scans_completed) / 24.0);
  std::printf("  raw volume:           %.2f TB/day (paper: 0.5-5 TB/day)\n",
              day_tb);
  std::printf("  mean scan size:       %s (paper: typically 20-30 GB)\n\n",
              human_bytes(report.raw_bytes /
                          std::max<std::size_t>(report.scans_completed, 1))
                  .c_str());

  std::printf("Movement layer (Globus + streaming)\n");
  std::printf("  globus bytes moved:   %s across %zu transfer tasks\n",
              human_bytes(facility.globus().total_bytes_moved()).c_str(),
              facility.globus().history().size());
  std::printf("  esnet->NERSC mean throughput: %.2f Gbps of %g Gbps\n",
              facility.esnet_nersc().mean_throughput() * 8.0 / 1e9,
              facility.config().esnet_nersc_gbps);
  std::printf("  streaming previews:   %zu (max latency %.1f s)\n\n",
              facility.streaming().previews_delivered(),
              report.streaming_latency.max);

  std::printf("Compute layer\n");
  double nersc_hours = 0.0;
  std::size_t nersc_jobs = 0;
  for (const auto& job : facility.perlmutter().all_jobs()) {
    if (job.spec.qos == hpc::Qos::Realtime &&
        job.state == hpc::JobState::Completed) {
      nersc_hours += (job.finished_at - job.started_at) / 3600.0;
      ++nersc_jobs;
    }
  }
  double alcf_hours = 0.0;
  for (const auto& r : facility.polaris().history()) {
    alcf_hours += (r.finished_at - r.started_at) / 3600.0;
  }
  std::printf("  NERSC realtime jobs:  %zu (%.1f node-hours)\n", nersc_jobs,
              nersc_hours);
  std::printf("  ALCF GC functions:    %zu (%.1f node-hours)\n\n",
              facility.polaris().history().size(), alcf_hours);

  std::printf("Orchestration layer (flow durations, s)\n");
  std::printf("  new_file_832:      %s\n", report.new_file.row(0).c_str());
  std::printf("  nersc_recon_flow:  %s\n", report.nersc_recon.row(0).c_str());
  std::printf("  alcf_recon_flow:   %s\n\n", report.alcf_recon.row(0).c_str());

  std::printf("Access/storage layer (occupancy after pruning)\n");
  auto occupancy = [](const storage::StorageEndpoint& ep) {
    std::printf("  %-14s %10s in %5zu files (%.1f%% of capacity)\n",
                ep.name().c_str(), human_bytes(ep.used()).c_str(),
                ep.file_count(), 100.0 * ep.utilization());
  };
  occupancy(facility.acq_server());
  occupancy(facility.beamline_data());
  occupancy(facility.cfs());
  occupancy(facility.eagle());
  occupancy(facility.hpss());
  std::printf("  catalogue datasets:   %zu\n", facility.scicat().size());

  const bool volume_in_band = day_tb > 0.5 && day_tb < 5.0;
  const bool cadence_in_band = report.scans_completed >= 24 * 10 &&
                               report.scans_completed <= 24 * 22;
  std::printf("\nshape checks: daily volume in 0.5-5 TB band %s, cadence "
              "12-20/hour %s\n",
              volume_in_band ? "OK" : "VIOLATED",
              cadence_in_band ? "OK" : "VIOLATED");
  return volume_in_band && cadence_in_band ? 0 : 1;
}
