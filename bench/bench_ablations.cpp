// Design-choice ablations from DESIGN.md:
//   1. Dual-path processing (streaming + file) vs file-only — time to
//      first feedback.
//   2. Checksum verification on/off — transfer cost vs integrity under a
//      lossy path.
//   3. CFS -> pscratch staging copy vs direct CFS I/O — job runtime.
#include <cstdio>

#include "pipeline/campaign.hpp"
#include "pipeline/facility.hpp"

using namespace alsflow;

namespace {

data::ScanMetadata paper_scan(const std::string& id) {
  data::ScanMetadata m;
  m.scan_id = id;
  m.sample_name = "reference";
  m.proposal = "ALS-11532";
  m.user = "visiting-user";
  m.n_angles = 1969;
  m.rows = 2160;
  m.cols = 2560;
  m.bit_depth = 16;
  m.exposure_s = 0.05;
  m.energy_kev = 25.0;
  m.pixel_um = 0.65;
  return m;
}

}  // namespace

int main() {
  std::printf("=== Design ablations ===\n\n");

  // --- 1. Dual-path vs file-only ---
  {
    pipeline::Facility facility;
    pipeline::ScanOptions dual;
    dual.streaming = true;
    auto fut = facility.process_scan(paper_scan("dual"), dual);
    facility.engine().run();
    const auto& out = fut.value();
    const Seconds acq = out.streaming->last_frame_at;
    const Seconds first_feedback_dual = out.streaming->preview_at - acq;
    const Seconds first_feedback_file_only = out.finished_at - acq;
    std::printf("1. dual-path processing (time to first feedback after "
                "acquisition)\n");
    std::printf("   streaming + file:  %s\n",
                human_duration(first_feedback_dual).c_str());
    std::printf("   file-only:         %s (first recon back)\n",
                human_duration(first_feedback_file_only).c_str());
    std::printf("   dual-path advantage: %.0fx\n\n",
                first_feedback_file_only / first_feedback_dual);
  }

  // --- 2. Checksums on/off over a lossy path ---
  {
    std::printf("2. checksum verification on a path corrupting 2%% of "
                "copies\n");
    for (bool verify : {true, false}) {
      pipeline::FacilityConfig config;
      config.verify_checksums = verify;
      pipeline::Facility facility(config);
      facility.globus().set_corruption_rate(0.02);
      pipeline::CampaignConfig campaign;
      campaign.duration = hours(3);
      campaign.scan_interval_mean = 300.0;
      campaign.streaming_fraction = 0.0;
      campaign.seed = 77;
      auto report = pipeline::run_campaign(facility, campaign);

      // Integrity audit: recon products with wrong checksums.
      std::size_t corrupted = 0, files = 0;
      for (const auto& ep :
           {&facility.cfs(), &facility.eagle(), &facility.beamline_data()}) {
        for (const auto& info : ep->list()) {
          ++files;
          // Raw files hash from acquisition digests (unknown here), so we
          // audit only the .zarr products whose checksum is derived from
          // the path.
          if (info.path.find(".zarr") != std::string::npos &&
              info.checksum != fnv1a64(info.path) &&
              info.checksum != ~fnv1a64(info.path)) {
            // landed via transfer: either exact or bit-flipped digest
          }
          if (info.path.find(".zarr") != std::string::npos &&
              info.checksum == ~fnv1a64(info.path)) {
            ++corrupted;
          }
        }
      }
      std::printf("   verify=%-5s  nersc flow median %6.0f s, retries in "
                  "transfers: yes, corrupted products on disk: %zu/%zu\n",
                  verify ? "on" : "off", report.nersc_recon.median, corrupted,
                  files);
    }
    std::printf("   (checksums trade seconds per transfer for zero silent "
                "corruption)\n\n");
  }

  // --- 3. pscratch staging vs direct CFS I/O ---
  {
    std::printf("3. CFS->pscratch staging vs direct CFS reads in the job\n");
    for (double stage_rate : {5e9, 0.8e9}) {
      // Direct CFS I/O is modeled as the slow 'staging' path: the job
      // streams from CFS at shared-filesystem rates instead of copying
      // once at burst rate and reading locally.
      pipeline::FacilityConfig config;
      config.pscratch_stage_rate = stage_rate;
      pipeline::Facility facility(config);
      auto fut = facility.process_scan(paper_scan("staging"), {});
      facility.engine().run();
      std::printf("   %-28s nersc flow %s\n",
                  stage_rate > 1e9 ? "staged (burst copy + local I/O):"
                                   : "direct CFS I/O:",
                  human_duration(facility.run_db()
                                     .duration_summary("nersc_recon_flow", 1)
                                     .mean)
                      .c_str());
    }
  }
  return 0;
}
