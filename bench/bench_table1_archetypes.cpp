// Table 1 reproduction: the three beamline user archetypes and the service
// each one gets from the infrastructure.
//
// Table 1 is qualitative; we quantify it by running each persona's
// characteristic workload and reporting the metric that archetype cares
// about:
//   * Visiting user — rapid acquisition under a constrained shift:
//     scans/hour and preview latency.
//   * Staff beamline scientist — experimental quality and uptime: QA scan
//     turnaround and flow success rate.
//   * Software engineer — observability: what the run database answers.
#include <cstdio>

#include "pipeline/campaign.hpp"
#include "pipeline/facility.hpp"

using namespace alsflow;

int main() {
  std::printf("=== Table 1: beamline user archetypes, quantified ===\n\n");
  auto personas = pipeline::default_personas();

  // --- Visiting user: an 8-hour shift at full cadence with streaming ---
  {
    const auto& p = personas[0];
    pipeline::Facility facility;
    facility.start_background_load(hours(12));
    pipeline::CampaignConfig campaign;
    campaign.duration = hours(8);
    campaign.scan_interval_mean = p.scan_interval_mean;
    campaign.streaming_fraction = p.streaming_fraction;
    campaign.seed = 31;
    auto report = pipeline::run_campaign(facility, campaign);
    std::printf("[%s]\n", p.name.c_str());
    std::printf("  scans in one shift:        %zu (%.1f/hour)\n",
                report.scans_completed,
                double(report.scans_completed) / 8.0);
    std::printf("  preview latency:           median %.1f s, max %.1f s\n",
                report.streaming_latency.median,
                report.streaming_latency.max);
    std::printf("  full volumes back within:  median %s\n\n",
                human_duration(report.alcf_recon.median).c_str());
  }

  // --- Staff scientist: sparse QA scans, cares about turnaround + uptime ---
  {
    const auto& p = personas[1];
    pipeline::Facility facility;
    pipeline::CampaignConfig campaign;
    campaign.duration = hours(8);
    campaign.scan_interval_mean = p.scan_interval_mean;
    campaign.streaming_fraction = p.streaming_fraction;
    campaign.randomize_kind = false;
    campaign.fixed_kind = p.typical_kind;  // cropped QA scans
    campaign.seed = 32;
    auto report = pipeline::run_campaign(facility, campaign);
    std::printf("[%s]\n", p.name.c_str());
    std::printf("  QA scans run:              %zu\n", report.scans_completed);
    std::printf("  QA turnaround:             median %s (cropped scans)\n",
                human_duration(report.nersc_recon.median).c_str());
    std::printf("  flow success rates:        nersc %.2f, alcf %.2f\n\n",
                report.nersc_success_rate, report.alcf_success_rate);
  }

  // --- Software engineer: observability through the run database ---
  {
    const auto& p = personas[2];
    pipeline::Facility facility;
    pipeline::CampaignConfig campaign;
    campaign.duration = hours(3);
    campaign.scan_interval_mean = 300.0;
    campaign.seed = 33;
    auto report = pipeline::run_campaign(facility, campaign);
    auto& db = facility.run_db();
    std::printf("[%s]\n", p.name.c_str());
    std::printf("  total flow runs recorded:  %zu\n", db.total_runs());
    std::size_t tasks = 0;
    for (const auto& rec : db.runs()) tasks += db.tasks(rec.id).size();
    std::printf("  task records (with attempts/errors): %zu\n", tasks);
    std::printf("  per-flow stats on demand:  new_file %s\n",
                report.new_file.row(0).c_str());
    std::printf("  success-rate query:        new_file_832 %.2f\n",
                db.success_rate("new_file_832"));
  }
  return 0;
}
