// Section 5.3 incident replay: a burst of concurrent Globus "prune"
// requests hits permission-denied, leaving jobs hanging and saturating the
// queue. The fix was to fail early and auto-cancel remote work.
//
// We run both behaviours against an endpoint whose deletes are denied and
// measure (a) how long each pruning pass hangs, (b) how much the work pool
// is saturated, and (c) whether beamline flows keep flowing meanwhile.
#include <cstdio>

#include "pipeline/campaign.hpp"
#include "pipeline/facility.hpp"

using namespace alsflow;

namespace {

struct IncidentResult {
  double prune_duration_mean = 0.0;
  std::size_t prune_failures = 0;
  double scan_flow_median = 0.0;
};

IncidentResult run(bool fail_early) {
  pipeline::FacilityConfig config;
  config.fail_early = fail_early;
  config.seed = 3;
  pipeline::Facility facility(config);

  // Aged data that the pruning pass will try (and fail) to delete.
  for (int i = 0; i < 60; ++i) {
    (void)facility.beamline_data().put("/raw/aged-" + std::to_string(i),
                                       10 * GB, 1, 0.0);
  }
  facility.beamline_data().deny("remove", "/raw/aged-");

  // Bring the clock past the retention window, then run a short beamtime
  // while the (doomed) pruning schedule fires repeatedly.
  facility.engine().run_until(days(11));
  facility.start_pruning(hours(1));

  pipeline::CampaignConfig campaign;
  campaign.duration = hours(4);
  campaign.scan_interval_mean = 300.0;
  campaign.streaming_fraction = 0.0;
  campaign.seed = 5;
  campaign.randomize_kind = false;
  campaign.fixed_kind = pipeline::ScanKind::Standard;
  auto report = pipeline::run_campaign(facility, campaign);

  IncidentResult result;
  OnlineStats prune_durations;
  for (const auto& rec : facility.run_db().runs("prune_beamline")) {
    if (rec.state == flow::RunState::Failed) {
      ++result.prune_failures;
      prune_durations.add(rec.duration());
    }
  }
  result.prune_duration_mean = prune_durations.mean();
  result.scan_flow_median = report.new_file.median;
  return result;
}

}  // namespace

int main() {
  std::printf("=== Sec 5.3: prune permission-denied incident replay ===\n\n");

  IncidentResult naive = run(/*fail_early=*/false);
  IncidentResult fixed = run(/*fail_early=*/true);

  std::printf("%-34s %14s %14s\n", "", "naive (pre)", "fail-early (post)");
  std::printf("%-34s %14zu %14zu\n", "failed pruning passes",
              naive.prune_failures, fixed.prune_failures);
  std::printf("%-34s %14s %14s\n", "mean hang per pass",
              human_duration(naive.prune_duration_mean).c_str(),
              human_duration(fixed.prune_duration_mean).c_str());
  std::printf("%-34s %14s %14s\n", "new_file_832 median meanwhile",
              human_duration(naive.scan_flow_median).c_str(),
              human_duration(fixed.scan_flow_median).c_str());

  const double ratio =
      naive.prune_duration_mean / std::max(fixed.prune_duration_mean, 1e-9);
  std::printf("\nfail-early resolves each pass %.0fx faster and surfaces the "
              "error immediately\n", ratio);
  std::printf("shape check: naive hang >> fail-early %s\n",
              ratio > 50.0 ? "OK" : "VIOLATED");
  return ratio > 50.0 ? 0 : 1;
}
