// Telemetry overhead microbenchmarks — the acceptance check that the
// disabled path costs nothing measurable.
//
// parallel_for is the hottest instrumented site (one enabled() check per
// fan-out on the caller, one per chunk on the workers); Disabled vs Off
// should be indistinguishable, and Enabled should only add a handful of
// relaxed atomic increments per fan-out. The instrument benchmarks below
// price the individual primitives.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>

#include "common/telemetry.hpp"
#include "monitor/slo.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using namespace alsflow;

// A body cheap enough that per-invocation telemetry would show up, but real
// enough that the fan-out itself dominates neither (64k adds per chunk).
void run_parallel_sum(parallel::ThreadPool& pool, std::size_t n) {
  std::atomic<std::uint64_t> sum{0};
  pool.parallel_for_chunks(0, n, [&](std::size_t b, std::size_t e) {
    std::uint64_t local = 0;
    for (std::size_t i = b; i < e; ++i) local += i;
    sum.fetch_add(local, std::memory_order_relaxed);
  });
  benchmark::DoNotOptimize(sum.load());
}

void BM_ParallelForTelemetryDisabled(benchmark::State& state) {
  telemetry::global().set_enabled(false);
  parallel::ThreadPool pool(4);
  for (auto _ : state) {
    run_parallel_sum(pool, std::size_t(state.range(0)));
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_ParallelForTelemetryDisabled)->Arg(1 << 20)->UseRealTime();

void BM_ParallelForTelemetryEnabled(benchmark::State& state) {
  auto& tel = telemetry::global();
  tel.set_enabled(true);
  parallel::ThreadPool pool(4);
  for (auto _ : state) {
    run_parallel_sum(pool, std::size_t(state.range(0)));
    // Keep the span vector from growing across iterations so we measure
    // instrumentation, not allocation pressure from an ever-larger trace.
    tel.tracer().clear();
  }
  tel.set_enabled(false);
  tel.clear();
  state.SetItemsProcessed(std::int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_ParallelForTelemetryEnabled)->Arg(1 << 20)->UseRealTime();

void BM_EnabledCheck(benchmark::State& state) {
  telemetry::global().set_enabled(false);
  // The entire cost a disabled site pays: one relaxed load + branch.
  for (auto _ : state) {
    benchmark::DoNotOptimize(telemetry::global().enabled());
  }
}
BENCHMARK(BM_EnabledCheck);

void BM_ObservingCheck(benchmark::State& state) {
  telemetry::global().set_event_sink(nullptr);
  // What every MonitorEvent emit site pays with no HealthMonitor installed:
  // one relaxed pointer load + branch, same budget as BM_EnabledCheck.
  for (auto _ : state) {
    benchmark::DoNotOptimize(telemetry::global().observing());
  }
}
BENCHMARK(BM_ObservingCheck);

void BM_MonitorIngest(benchmark::State& state) {
  // The monitored path: one SloEngine::ingest per event — window prune,
  // burn-rate evaluation over both windows, histogram observe. Priced on a
  // warm per-target series with the production queue-wait spec shape.
  monitor::SloEngine slo;
  monitor::SloSpec spec;
  spec.name = "facility_queue_wait";
  spec.component = "hpc";
  spec.kind = "queue_wait";
  spec.stage = "facility_queue";
  spec.objective = 60.0;
  spec.target_fraction = 0.70;
  spec.rules = {{600.0, 2.0, monitor::Severity::Page},
                {1800.0, 1.0, monitor::Severity::Ticket}};
  slo.add(spec);
  telemetry::MonitorEvent ev;
  ev.component = "hpc";
  ev.kind = "queue_wait";
  ev.target = "nersc";
  ev.value = 5.0;  // well under objective: steady-state, no alert churn
  double t = 0.0;
  for (auto _ : state) {
    ev.t = t;
    t += 1.0;  // deque saturates at the 3600 s retention floor
    benchmark::DoNotOptimize(slo.ingest(ev));
  }
}
BENCHMARK(BM_MonitorIngest);

void BM_CounterAdd(benchmark::State& state) {
  telemetry::Counter c;
  for (auto _ : state) {
    c.add();
  }
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramObserve(benchmark::State& state) {
  telemetry::Histogram h({1.0, 2.0, 5.0, 10.0, 30.0, 60.0});
  double v = 0.0;
  for (auto _ : state) {
    h.observe(v);
    v += 0.1;
    if (v > 70.0) v = 0.0;
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramObserve);

void BM_SpanBeginEnd(benchmark::State& state) {
  telemetry::Tracer tracer;
  double t = 0.0;
  for (auto _ : state) {
    auto id = tracer.begin("bench", "span", 0, telemetry::ClockDomain::Sim, t);
    tracer.end(id, t + 1.0);
    t += 1.0;
    if (tracer.span_count() >= 100000) tracer.clear();
  }
}
BENCHMARK(BM_SpanBeginEnd);

void BM_RegistryLookup(benchmark::State& state) {
  telemetry::MetricsRegistry reg;
  // The map-lookup path services cold sites; hot sites cache the reference
  // (see thread_pool.cpp) and pay only BM_CounterAdd.
  for (auto _ : state) {
    reg.counter("alsflow_bench_lookup_total", "kind=\"x\"").add();
  }
}
BENCHMARK(BM_RegistryLookup);

}  // namespace

BENCHMARK_MAIN();
