// Federated fleet-campaign benchmark: placement policy ladder.
//
// Runs the same fleet campaign (8 beamlines x 128 scans at production
// cadence, shared NERSC + ALCF + cloud-burst facilities) once per
// placement policy and reports makespan, turnaround quantiles, and the
// launch mix per facility:
//
//   static_dual — the paper's baseline: every scan reconstructs at both
//                 DOE facilities unconditionally (no decision, 2x work).
//   round_robin — one placement per scan, rotated statically.
//   greedy      — lowest predicted turnaround over the live directory
//                 snapshot (queue-wait quantiles, WAN rate, congestion).
//   hedged      — greedy plus a runner-up hedge for deadline scans.
//
// A final resilience run repeats the greedy campaign with a mid-campaign
// NERSC outage: the bench fails (exit 1) if any scan is lost, or if the
// greedy schedule does not beat static_dual on makespan — the PR's
// headline claim, gated here and in CI via tools/bench_compare.py against
// the committed BENCH_sched_campaign.json (everything runs on the sim
// clock, so the numbers are exactly reproducible).
#include <cstdio>
#include <string>
#include <vector>

#include "chaos/scenario.hpp"
#include "sched/campaign.hpp"

using namespace alsflow;
using sched::FleetCampaignConfig;
using sched::FleetCampaignReport;

namespace {

constexpr int kBeamlines = 8;
constexpr int kScansPerBeamline = 128;  // 1024 offered fleet-wide

FleetCampaignConfig base_config() {
  FleetCampaignConfig cfg;
  cfg.beamlines = kBeamlines;
  cfg.scans_per_beamline = kScansPerBeamline;
  return cfg;
}

void print_row(const FleetCampaignReport& r) {
  std::string mix;
  for (const auto& [facility, count] : r.placements) {
    if (!mix.empty()) mix += " ";
    mix += facility + "=" + std::to_string(count);
  }
  std::printf("%-12s completed %4zu/%-4zu  makespan %8.0fs  "
              "turnaround mean %7.1fs p95 %7.1fs p99 %7.1fs  "
              "failovers %2zu hedges %2zu  [%s]\n",
              r.policy.c_str(), r.completed, r.offered, r.makespan,
              r.turnaround.mean, r.turnaround.p95, r.turnaround_p99,
              r.failovers, r.hedges, mix.c_str());
}

void emit_policy_json(FILE* f, const FleetCampaignReport& r, bool last) {
  std::fprintf(
      f,
      "    \"%s\": {\"completed\": %zu, \"lost\": %zu, "
      "\"makespan_s\": %.3f, \"mean_turnaround_s\": %.3f, "
      "\"p95_turnaround_s\": %.3f, \"p99_turnaround_s\": %.3f, "
      "\"failovers\": %zu, \"hedges\": %zu}%s\n",
      r.policy.c_str(), r.completed, r.lost, r.makespan, r.turnaround.mean,
      r.turnaround.p95, r.turnaround_p99, r.failovers, r.hedges,
      last ? "" : ",");
}

}  // namespace

int main() {
  std::printf("=== federated fleet campaign (%d beamlines x %d scans) ===\n\n",
              kBeamlines, kScansPerBeamline);

  std::vector<FleetCampaignReport> reports;
  for (const char* policy :
       {"static_dual", "round_robin", "greedy", "hedged"}) {
    FleetCampaignConfig cfg = base_config();
    cfg.policy = policy;
    reports.push_back(sched::run_fleet_campaign(cfg));
    print_row(reports.back());
  }
  const FleetCampaignReport& dual = reports[0];
  const FleetCampaignReport& greedy = reports[2];

  // Resilience: the greedy campaign shrugs off a mid-campaign NERSC
  // outage — arrivals burst past capacity so jobs are queued at the dark
  // site, which must fail over rather than strand their scans.
  FleetCampaignConfig chaos_cfg = base_config();
  chaos_cfg.policy = "greedy";
  chaos_cfg.scans_per_beamline = 16;
  chaos_cfg.scan_interval = 10.0;
  chaos_cfg.scheduler.failover_timeout = 600.0;
  chaos_cfg.scenario = {"nersc_blackout",
                        {{chaos::FaultKind::FacilityOutage, 120.0, 3600.0,
                          "nersc", 0.0}}};
  FleetCampaignReport blackout = sched::run_fleet_campaign(chaos_cfg);
  blackout.policy = "greedy+outage";
  print_row(blackout);

  const double makespan_gain =
      greedy.makespan > 0.0 ? dual.makespan / greedy.makespan : 0.0;
  const double turnaround_gain = greedy.turnaround.mean > 0.0
                                     ? dual.turnaround.mean /
                                           greedy.turnaround.mean
                                     : 0.0;
  std::printf("\ngreedy vs static_dual: campaign %.2fx faster, "
              "per-scan mean %.2fx faster\n",
              makespan_gain, turnaround_gain);

  if (FILE* f = std::fopen("BENCH_sched_campaign.json", "w")) {
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"beamlines\": %d,\n", kBeamlines);
    std::fprintf(f, "  \"scans\": %d,\n", kBeamlines * kScansPerBeamline);
    std::fprintf(f, "  \"policies\": {\n");
    for (std::size_t i = 0; i < reports.size(); ++i) {
      emit_policy_json(f, reports[i], i + 1 == reports.size());
    }
    std::fprintf(f, "  },\n");
    // Ratio names deliberately avoid the comparator's lower-is-better
    // metric patterns: these describe the win, they are not latencies.
    std::fprintf(f, "  \"greedy_gain_over_static\": {\"campaign\": %.4f, "
                    "\"per_scan_mean\": %.4f},\n",
                 makespan_gain, turnaround_gain);
    std::fprintf(f, "  \"blackout\": {\"completed\": %zu, \"lost\": %zu, "
                    "\"failovers\": %zu}\n",
                 blackout.completed, blackout.lost, blackout.failovers);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote BENCH_sched_campaign.json\n");
  }

  bool ok = true;
  for (const auto& r : reports) {
    if (r.lost != 0 || r.completed != r.offered) {
      std::printf("FAIL: policy %s lost %zu scans\n", r.policy.c_str(),
                  r.lost);
      ok = false;
    }
  }
  if (blackout.lost != 0 || blackout.completed != blackout.offered) {
    std::printf("FAIL: blackout campaign lost %zu scans\n", blackout.lost);
    ok = false;
  }
  if (blackout.failovers == 0) {
    std::printf("FAIL: blackout campaign recorded no failovers\n");
    ok = false;
  }
  if (greedy.makespan >= dual.makespan) {
    std::printf("FAIL: greedy makespan %.0fs does not beat static_dual "
                "%.0fs\n",
                greedy.makespan, dual.makespan);
    ok = false;
  }
  return ok ? 0 : 1;
}
