// Chaos campaign benchmark: latency inflation under injected faults.
//
// Runs the same fixed campaign (N scans at production cadence) once
// fault-free and once per golden chaos scenario, and reports per scenario:
//   - makespan inflation (campaign finish vs the fault-free baseline)
//   - mean and p95 per-scan latency inflation
//   - scans completed (must always equal the offered count — chaos may
//     slow the campaign, never lose work)
//
// Everything runs on the simulation clock with seeded randomness, so the
// numbers are exactly reproducible. Results land in
// BENCH_chaos_campaign.json for machine consumption.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "chaos/chaos_engine.hpp"
#include "chaos/scenario.hpp"
#include "pipeline/facility.hpp"

using namespace alsflow;
using chaos::FaultEvent;
using chaos::FaultKind;
using chaos::Scenario;

namespace {

constexpr int kScans = 8;
constexpr Seconds kInterval = 180.0;  // 20 scans/hour, paper cadence

data::ScanMetadata make_scan(std::size_t index) {
  data::ScanMetadata m;
  char id[32];
  std::snprintf(id, sizeof id, "scan-%03zu", index);
  m.scan_id = id;
  m.sample_name = "chaos-bench";
  m.proposal = "ALS-11532";
  m.user = "visiting-user";
  m.rows = 512;
  m.cols = 2560;
  m.n_angles = 500;
  m.bit_depth = 16;
  m.exposure_s = 0.05;
  m.energy_kev = 25.0;
  m.pixel_um = 0.65;
  return m;
}

struct CampaignResult {
  std::size_t completed = 0;
  Seconds makespan = 0.0;
  std::vector<double> scan_latencies;  // finished_at - submit time

  double mean_latency() const {
    if (scan_latencies.empty()) return 0.0;
    double s = 0.0;
    for (double x : scan_latencies) s += x;
    return s / double(scan_latencies.size());
  }
  double p95_latency() const {
    if (scan_latencies.empty()) return 0.0;
    std::vector<double> xs = scan_latencies;
    std::sort(xs.begin(), xs.end());
    return xs[std::size_t(0.95 * double(xs.size() - 1))];
  }
};

CampaignResult run_campaign(const Scenario* scenario) {
  pipeline::FacilityConfig cfg;
  cfg.seed = 42;
  cfg.background_utilization = 0.0;
  pipeline::Facility fac(cfg);

  chaos::ChaosEngine chaos_eng(fac.engine());
  chaos_eng.bind_link(&fac.lan());
  chaos_eng.bind_link(&fac.esnet_nersc());
  chaos_eng.bind_link(&fac.esnet_alcf());
  chaos_eng.bind_adapter(&fac.nersc_adapter());
  chaos_eng.bind_adapter(&fac.alcf_adapter());
  chaos_eng.bind_transfer(&fac.globus());
  chaos_eng.bind_endpoint(&fac.cfs());
  chaos_eng.bind_endpoint(&fac.eagle());
  chaos_eng.bind_flow_engine(&fac.flows());
  chaos_eng.bind_run_db(&fac.run_db());
  if (scenario != nullptr) chaos_eng.arm(*scenario);

  std::vector<sim::Future<pipeline::ScanOutcome>> futs;
  futs.reserve(kScans);
  pipeline::ScanOptions options;
  options.streaming = false;
  options.archive = false;
  for (int i = 0; i < kScans; ++i) {
    fac.engine().schedule_at(double(i) * kInterval, [&fac, &futs, i,
                                                     options] {
      futs.push_back(fac.process_scan(make_scan(std::size_t(i)), options));
    });
  }
  fac.engine().run();

  CampaignResult r;
  // A crash scenario resolves the original futures non-terminal and the
  // replayed runs finish in the database, so completion is counted there:
  // a scan is complete when every branch flow has a Completed run for it.
  auto& db = fac.run_db();
  for (int i = 0; i < kScans; ++i) {
    char id[32];
    std::snprintf(id, sizeof id, "scan-%03d", i);
    Seconds done_at = -1.0;
    bool all = true;
    for (const char* flow_name :
         {"new_file_832", "nersc_recon_flow", "alcf_recon_flow"}) {
      Seconds branch = -1.0;
      for (const auto& run : db.runs(flow_name)) {
        if (run.parameters == id &&
            run.state == flow::RunState::Completed) {
          branch = std::max(branch, run.finished_at);
        }
      }
      if (branch < 0.0) all = false;
      done_at = std::max(done_at, branch);
    }
    if (all) {
      ++r.completed;
      r.makespan = std::max(r.makespan, done_at);
      r.scan_latencies.push_back(done_at - double(i) * kInterval);
    }
  }
  return r;
}

struct NamedScenario {
  std::string key;
  Scenario scenario;
};

std::vector<NamedScenario> golden_scenarios() {
  std::vector<NamedScenario> out;
  out.push_back({"facility_outage",
                 {"nersc_maintenance",
                  {{FaultKind::FacilityOutage, 120.0, 900.0, "nersc", 0.0}}}});
  out.push_back({"link_blackout",
                 {"esnet_routing_flap",
                  {{FaultKind::LinkBlackout, 120.0, 300.0, "esnet-nersc",
                    0.0}}}});
  out.push_back({"wan_degradation",
                 {"esnet_degraded",
                  {{FaultKind::LinkDegradation, 60.0, 900.0, "esnet-alcf",
                    0.2}}}});
  out.push_back(
      {"fault_burst",
       {"globus_fault_burst",
        {{FaultKind::TransientBurst, 60.0, 600.0, "", 0.3},
         {FaultKind::CorruptionBurst, 60.0, 600.0, "", 0.3}}}});
  out.push_back({"permission_burst",
                 {"cfs_permission_incident",
                  {{FaultKind::PermissionBurst, 60.0, 120.0, "nersc-cfs",
                    0.0}}}});
  out.push_back({"recall_spike",
                 {"hpss_recall_queue",
                  {{FaultKind::RecallLatencySpike, 60.0, 900.0,
                    "esnet-nersc", 45.0}}}});
  out.push_back({"engine_crash",
                 {"orchestrator_crash",
                  {{FaultKind::EngineCrash, 400.0, 120.0, "", 0.0}}}});
  return out;
}

}  // namespace

int main() {
  std::printf("=== chaos campaign benchmark (%d scans @ %.0fs cadence) ===\n\n",
              kScans, kInterval);

  const CampaignResult base = run_campaign(nullptr);
  std::printf("%-18s completed %zu/%d  makespan %8.1fs  "
              "mean latency %7.1fs  p95 %7.1fs\n",
              "baseline", base.completed, kScans, base.makespan,
              base.mean_latency(), base.p95_latency());

  struct Row {
    std::string key;
    CampaignResult r;
  };
  std::vector<Row> rows;
  for (const auto& ns : golden_scenarios()) {
    Row row{ns.key, run_campaign(&ns.scenario)};
    std::printf("%-18s completed %zu/%d  makespan %8.1fs  "
                "mean latency %7.1fs  p95 %7.1fs  inflation %.2fx  %s\n",
                row.key.c_str(), row.r.completed, kScans, row.r.makespan,
                row.r.mean_latency(), row.r.p95_latency(),
                base.mean_latency() > 0.0
                    ? row.r.mean_latency() / base.mean_latency()
                    : 0.0,
                row.r.completed == std::size_t(kScans) ? "zero lost OK"
                                                       : "LOST SCANS");
    rows.push_back(std::move(row));
  }

  if (FILE* f = std::fopen("BENCH_chaos_campaign.json", "w")) {
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"scans\": %d,\n", kScans);
    std::fprintf(f, "  \"interval_s\": %.1f,\n", kInterval);
    std::fprintf(f, "  \"baseline\": {\"completed\": %zu, "
                    "\"makespan_s\": %.3f, \"mean_latency_s\": %.3f, "
                    "\"p95_latency_s\": %.3f},\n",
                 base.completed, base.makespan, base.mean_latency(),
                 base.p95_latency());
    std::fprintf(f, "  \"scenarios\": {\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& row = rows[i];
      std::fprintf(
          f,
          "    \"%s\": {\"completed\": %zu, \"makespan_s\": %.3f, "
          "\"mean_latency_s\": %.3f, \"p95_latency_s\": %.3f, "
          "\"makespan_inflation\": %.4f, \"latency_inflation\": %.4f}%s\n",
          row.key.c_str(), row.r.completed, row.r.makespan,
          row.r.mean_latency(), row.r.p95_latency(),
          base.makespan > 0.0 ? row.r.makespan / base.makespan : 0.0,
          base.mean_latency() > 0.0
              ? row.r.mean_latency() / base.mean_latency()
              : 0.0,
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  }\n");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_chaos_campaign.json\n");
  }

  bool ok = base.completed == std::size_t(kScans);
  for (const auto& row : rows) {
    ok = ok && row.r.completed == std::size_t(kScans);
  }
  return ok ? 0 : 1;
}
