// Microbenchmarks of the reconstruction kernels (the compute rates behind
// the paper's TomoPy / streamtomocupy stages). These calibrate the
// simulation's ComputeModel and expose the FBP vs gridrec vs iterative
// trade-off that motivates the dual-path design.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "tomo/phantom.hpp"
#include "tomo/projector.hpp"
#include "tomo/recon.hpp"

namespace {

using namespace alsflow;

tomo::Image sino_for(std::size_t n, std::size_t n_angles) {
  tomo::Geometry geo{n_angles, n, -1.0};
  return tomo::analytic_sinogram(tomo::shepp_logan_ellipses(), geo);
}

void BM_ForwardProject(benchmark::State& state) {
  const auto n = std::size_t(state.range(0));
  tomo::Geometry geo{n, n, -1.0};
  tomo::Image img = tomo::shepp_logan(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tomo::forward_project(img, geo));
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(n * n * n));
}
BENCHMARK(BM_ForwardProject)->Arg(64)->Arg(128)->Arg(256);

void BM_FbpSlice(benchmark::State& state) {
  const auto n = std::size_t(state.range(0));
  tomo::Geometry geo{n, n, -1.0};
  tomo::Image sino = sino_for(n, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tomo::reconstruct_fbp(sino, geo, n, tomo::FilterKind::SheppLogan));
  }
  // FBP cost ~ n_angles * n^2 interpolation ops.
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(n * n * n));
}
BENCHMARK(BM_FbpSlice)->Arg(64)->Arg(128)->Arg(256);

void BM_GridrecSlice(benchmark::State& state) {
  const auto n = std::size_t(state.range(0));
  tomo::Geometry geo{n, n, -1.0};
  tomo::Image sino = sino_for(n, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tomo::reconstruct_gridrec(sino, geo, n, tomo::FilterKind::SheppLogan));
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(n * n * n));
}
BENCHMARK(BM_GridrecSlice)->Arg(64)->Arg(128)->Arg(256);

void BM_SirtSlice(benchmark::State& state) {
  const auto n = std::size_t(state.range(0));
  tomo::Geometry geo{n, n, -1.0};
  tomo::Image sino = sino_for(n, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tomo::reconstruct_sirt(sino, geo, n, 10));
  }
}
BENCHMARK(BM_SirtSlice)->Arg(64)->Arg(128);

// Multi-slice volumes through reconstruct_volume: slice-level parallelism
// on top of the per-kernel parallelism. This is the number the speedup
// acceptance compares across core counts.
void BM_FbpVolume(benchmark::State& state) {
  const auto n = std::size_t(state.range(0));
  const std::size_t n_slices = 8;
  tomo::Geometry geo{n, n, -1.0};
  std::vector<tomo::Image> sinos(n_slices, sino_for(n, n));
  tomo::ReconOptions opts;
  opts.algorithm = tomo::Algorithm::FBP;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tomo::reconstruct_volume(sinos, geo, n, opts));
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(n_slices * n * n * n));
}
BENCHMARK(BM_FbpVolume)->Arg(64)->Arg(128);

void BM_GridrecVolume(benchmark::State& state) {
  const auto n = std::size_t(state.range(0));
  const std::size_t n_slices = 8;
  tomo::Geometry geo{n, n, -1.0};
  std::vector<tomo::Image> sinos(n_slices, sino_for(n, n));
  tomo::ReconOptions opts;
  opts.algorithm = tomo::Algorithm::Gridrec;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tomo::reconstruct_volume(sinos, geo, n, opts));
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(n_slices * n * n * n));
}
BENCHMARK(BM_GridrecVolume)->Arg(64)->Arg(128);

}  // namespace

// Like BENCHMARK_MAIN(), but defaults --benchmark_out to a JSON file so
// every run leaves a machine-readable record (BENCH_recon_kernels.json)
// for cross-machine speedup comparisons. Explicit flags still win.
int main(int argc, char** argv) {
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strstr(argv[i], "--benchmark_out") != nullptr) has_out = true;
  }
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_recon_kernels.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int new_argc = int(args.size());
  benchmark::Initialize(&new_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(new_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
