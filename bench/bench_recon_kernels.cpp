// Microbenchmarks of the reconstruction kernels (the compute rates behind
// the paper's TomoPy / streamtomocupy stages). These calibrate the
// simulation's ComputeModel and expose the FBP vs gridrec vs iterative
// trade-off that motivates the dual-path design.
#include <benchmark/benchmark.h>

#include "tomo/phantom.hpp"
#include "tomo/projector.hpp"
#include "tomo/recon.hpp"

namespace {

using namespace alsflow;

tomo::Image sino_for(std::size_t n, std::size_t n_angles) {
  tomo::Geometry geo{n_angles, n, -1.0};
  return tomo::analytic_sinogram(tomo::shepp_logan_ellipses(), geo);
}

void BM_ForwardProject(benchmark::State& state) {
  const auto n = std::size_t(state.range(0));
  tomo::Geometry geo{n, n, -1.0};
  tomo::Image img = tomo::shepp_logan(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tomo::forward_project(img, geo));
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(n * n * n));
}
BENCHMARK(BM_ForwardProject)->Arg(64)->Arg(128)->Arg(256);

void BM_FbpSlice(benchmark::State& state) {
  const auto n = std::size_t(state.range(0));
  tomo::Geometry geo{n, n, -1.0};
  tomo::Image sino = sino_for(n, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tomo::reconstruct_fbp(sino, geo, n, tomo::FilterKind::SheppLogan));
  }
  // FBP cost ~ n_angles * n^2 interpolation ops.
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(n * n * n));
}
BENCHMARK(BM_FbpSlice)->Arg(64)->Arg(128)->Arg(256);

void BM_GridrecSlice(benchmark::State& state) {
  const auto n = std::size_t(state.range(0));
  tomo::Geometry geo{n, n, -1.0};
  tomo::Image sino = sino_for(n, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tomo::reconstruct_gridrec(sino, geo, n, tomo::FilterKind::SheppLogan));
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(n * n * n));
}
BENCHMARK(BM_GridrecSlice)->Arg(64)->Arg(128)->Arg(256);

void BM_SirtSlice(benchmark::State& state) {
  const auto n = std::size_t(state.range(0));
  tomo::Geometry geo{n, n, -1.0};
  tomo::Image sino = sino_for(n, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tomo::reconstruct_sirt(sino, geo, n, 10));
  }
}
BENCHMARK(BM_SirtSlice)->Arg(64)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
