// Section 5.2 key outcome: ">100x improvement in time-to-insight compared
// to historical workflows".
//
// The paper's anchor quote: "it took 45 minutes just to save a scan, then
// another hour to get back a single reconstruction slice". We implement
// that historical workflow — slow local save, serial workstation
// reconstruction — and race it against the streaming branch (first
// feedback) and the file-based branch (full volume) for the same scan.
#include <cstdio>

#include "hpc/adapter.hpp"
#include "pipeline/facility.hpp"

using namespace alsflow;

namespace {

data::ScanMetadata paper_scan() {
  data::ScanMetadata m;
  m.scan_id = "speedup-ref";
  m.sample_name = "reference";
  m.proposal = "ALS-11532";
  m.user = "visiting-user";
  m.n_angles = 1969;
  m.rows = 2160;
  m.cols = 2560;
  m.bit_depth = 16;
  m.exposure_s = 0.05;
  m.energy_kev = 25.0;
  m.pixel_um = 0.65;
  return m;
}

}  // namespace

int main() {
  std::printf("=== Sec 5.2: time-to-insight vs the historical workflow ===\n\n");
  auto scan = paper_scan();

  // --- Historical baseline ---
  // 45-minute save to local disk, then a serial workstation pass for one
  // slice of feedback (the "hour to get back a single slice" era), and the
  // full volume only after reconstructing everything locally.
  const Seconds hist_save = minutes(45);
  hpc::ComputeModel model;
  const Seconds hist_one_slice =
      model.recon_seconds(hpc::Device::Workstation, tomo::Algorithm::Gridrec,
                          1, scan.cols);
  const Seconds hist_full =
      model.recon_seconds(hpc::Device::Workstation, tomo::Algorithm::Gridrec,
                          scan.rows, scan.cols);
  const Seconds hist_first_feedback = hist_save + hist_one_slice;
  const Seconds hist_full_volume = hist_save + hist_full;

  // --- Modern pipeline: one scan through the facility ---
  pipeline::Facility facility;
  pipeline::ScanOptions options;
  options.streaming = true;
  auto fut = facility.process_scan(scan, options);
  facility.engine().run();
  const auto& out = fut.value();

  const Seconds acq_done = out.streaming->last_frame_at;
  const Seconds modern_first_feedback = out.streaming->preview_latency();
  const Seconds modern_full_volume = out.finished_at - acq_done;

  std::printf("%-38s %14s %14s\n", "milestone (after acquisition ends)",
              "historical", "modern");
  std::printf("%-38s %14s %14s\n", "first visual feedback",
              human_duration(hist_first_feedback).c_str(),
              human_duration(modern_first_feedback).c_str());
  std::printf("%-38s %14s %14s\n", "full 3-D volume available",
              human_duration(hist_full_volume).c_str(),
              human_duration(modern_full_volume).c_str());

  const double feedback_speedup = hist_first_feedback / modern_first_feedback;
  const double volume_speedup = hist_full_volume / modern_full_volume;
  std::printf("\nspeedup, first feedback:  %.0fx  (paper claims >100x)\n",
              feedback_speedup);
  std::printf("speedup, full volume:     %.0fx\n", volume_speedup);
  std::printf("\nshape check: >100x first-feedback speedup %s\n",
              feedback_speedup > 100.0 ? "OK" : "VIOLATED");
  return feedback_speedup > 100.0 ? 0 : 1;
}
