# Empty dependencies file for proppant_retrospective.
# This may be replaced when dependencies are built.
