file(REMOVE_RECURSE
  "CMakeFiles/proppant_retrospective.dir/proppant_retrospective.cpp.o"
  "CMakeFiles/proppant_retrospective.dir/proppant_retrospective.cpp.o.d"
  "proppant_retrospective"
  "proppant_retrospective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proppant_retrospective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
