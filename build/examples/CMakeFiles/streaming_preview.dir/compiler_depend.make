# Empty compiler generated dependencies file for streaming_preview.
# This may be replaced when dependencies are built.
