file(REMOVE_RECURSE
  "CMakeFiles/streaming_preview.dir/streaming_preview.cpp.o"
  "CMakeFiles/streaming_preview.dir/streaming_preview.cpp.o.d"
  "streaming_preview"
  "streaming_preview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_preview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
