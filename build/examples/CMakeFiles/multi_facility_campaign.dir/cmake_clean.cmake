file(REMOVE_RECURSE
  "CMakeFiles/multi_facility_campaign.dir/multi_facility_campaign.cpp.o"
  "CMakeFiles/multi_facility_campaign.dir/multi_facility_campaign.cpp.o.d"
  "multi_facility_campaign"
  "multi_facility_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_facility_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
