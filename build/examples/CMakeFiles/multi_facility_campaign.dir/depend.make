# Empty dependencies file for multi_facility_campaign.
# This may be replaced when dependencies are built.
