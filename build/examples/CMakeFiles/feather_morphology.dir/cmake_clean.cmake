file(REMOVE_RECURSE
  "CMakeFiles/feather_morphology.dir/feather_morphology.cpp.o"
  "CMakeFiles/feather_morphology.dir/feather_morphology.cpp.o.d"
  "feather_morphology"
  "feather_morphology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feather_morphology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
