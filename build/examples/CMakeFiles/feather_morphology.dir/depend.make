# Empty dependencies file for feather_morphology.
# This may be replaced when dependencies are built.
