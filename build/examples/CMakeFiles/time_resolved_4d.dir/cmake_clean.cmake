file(REMOVE_RECURSE
  "CMakeFiles/time_resolved_4d.dir/time_resolved_4d.cpp.o"
  "CMakeFiles/time_resolved_4d.dir/time_resolved_4d.cpp.o.d"
  "time_resolved_4d"
  "time_resolved_4d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_resolved_4d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
