# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for time_resolved_4d.
