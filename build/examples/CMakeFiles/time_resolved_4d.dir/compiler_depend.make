# Empty compiler generated dependencies file for time_resolved_4d.
# This may be replaced when dependencies are built.
