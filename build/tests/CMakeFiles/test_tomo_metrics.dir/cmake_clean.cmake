file(REMOVE_RECURSE
  "CMakeFiles/test_tomo_metrics.dir/test_tomo_metrics.cpp.o"
  "CMakeFiles/test_tomo_metrics.dir/test_tomo_metrics.cpp.o.d"
  "test_tomo_metrics"
  "test_tomo_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tomo_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
