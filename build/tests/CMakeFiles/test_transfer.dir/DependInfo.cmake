
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_transfer.cpp" "tests/CMakeFiles/test_transfer.dir/test_transfer.cpp.o" "gcc" "tests/CMakeFiles/test_transfer.dir/test_transfer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/alsflow_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alsflow_transfer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alsflow_hpc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alsflow_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alsflow_beamline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alsflow_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alsflow_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alsflow_access.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alsflow_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alsflow_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alsflow_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alsflow_tomo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alsflow_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alsflow_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
