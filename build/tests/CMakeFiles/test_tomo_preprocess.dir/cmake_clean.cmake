file(REMOVE_RECURSE
  "CMakeFiles/test_tomo_preprocess.dir/test_tomo_preprocess.cpp.o"
  "CMakeFiles/test_tomo_preprocess.dir/test_tomo_preprocess.cpp.o.d"
  "test_tomo_preprocess"
  "test_tomo_preprocess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tomo_preprocess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
