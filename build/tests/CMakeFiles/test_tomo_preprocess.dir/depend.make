# Empty dependencies file for test_tomo_preprocess.
# This may be replaced when dependencies are built.
