# Empty dependencies file for test_tomo_fft.
# This may be replaced when dependencies are built.
