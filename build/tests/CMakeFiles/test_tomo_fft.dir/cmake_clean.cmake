file(REMOVE_RECURSE
  "CMakeFiles/test_tomo_fft.dir/test_tomo_fft.cpp.o"
  "CMakeFiles/test_tomo_fft.dir/test_tomo_fft.cpp.o.d"
  "test_tomo_fft"
  "test_tomo_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tomo_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
