file(REMOVE_RECURSE
  "CMakeFiles/test_catalog_access.dir/test_catalog_access.cpp.o"
  "CMakeFiles/test_catalog_access.dir/test_catalog_access.cpp.o.d"
  "test_catalog_access"
  "test_catalog_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_catalog_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
