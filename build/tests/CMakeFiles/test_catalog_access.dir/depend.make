# Empty dependencies file for test_catalog_access.
# This may be replaced when dependencies are built.
