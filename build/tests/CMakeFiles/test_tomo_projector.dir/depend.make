# Empty dependencies file for test_tomo_projector.
# This may be replaced when dependencies are built.
