file(REMOVE_RECURSE
  "CMakeFiles/test_tomo_projector.dir/test_tomo_projector.cpp.o"
  "CMakeFiles/test_tomo_projector.dir/test_tomo_projector.cpp.o.d"
  "test_tomo_projector"
  "test_tomo_projector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tomo_projector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
