# Empty compiler generated dependencies file for test_tomo_streaming.
# This may be replaced when dependencies are built.
