file(REMOVE_RECURSE
  "CMakeFiles/test_tomo_streaming.dir/test_tomo_streaming.cpp.o"
  "CMakeFiles/test_tomo_streaming.dir/test_tomo_streaming.cpp.o.d"
  "test_tomo_streaming"
  "test_tomo_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tomo_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
