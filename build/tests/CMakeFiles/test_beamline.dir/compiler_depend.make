# Empty compiler generated dependencies file for test_beamline.
# This may be replaced when dependencies are built.
