file(REMOVE_RECURSE
  "CMakeFiles/test_beamline.dir/test_beamline.cpp.o"
  "CMakeFiles/test_beamline.dir/test_beamline.cpp.o.d"
  "test_beamline"
  "test_beamline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_beamline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
