file(REMOVE_RECURSE
  "CMakeFiles/test_hpc.dir/test_hpc.cpp.o"
  "CMakeFiles/test_hpc.dir/test_hpc.cpp.o.d"
  "test_hpc"
  "test_hpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
