# Empty dependencies file for test_hpc.
# This may be replaced when dependencies are built.
