# Empty dependencies file for test_tomo_recon.
# This may be replaced when dependencies are built.
