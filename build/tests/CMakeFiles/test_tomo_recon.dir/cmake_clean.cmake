file(REMOVE_RECURSE
  "CMakeFiles/test_tomo_recon.dir/test_tomo_recon.cpp.o"
  "CMakeFiles/test_tomo_recon.dir/test_tomo_recon.cpp.o.d"
  "test_tomo_recon"
  "test_tomo_recon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tomo_recon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
