# Empty dependencies file for test_tomo_phantom.
# This may be replaced when dependencies are built.
