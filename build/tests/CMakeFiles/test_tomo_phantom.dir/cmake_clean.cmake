file(REMOVE_RECURSE
  "CMakeFiles/test_tomo_phantom.dir/test_tomo_phantom.cpp.o"
  "CMakeFiles/test_tomo_phantom.dir/test_tomo_phantom.cpp.o.d"
  "test_tomo_phantom"
  "test_tomo_phantom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tomo_phantom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
