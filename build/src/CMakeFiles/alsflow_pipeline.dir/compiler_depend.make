# Empty compiler generated dependencies file for alsflow_pipeline.
# This may be replaced when dependencies are built.
