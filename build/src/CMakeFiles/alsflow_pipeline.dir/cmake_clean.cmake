file(REMOVE_RECURSE
  "CMakeFiles/alsflow_pipeline.dir/pipeline/campaign.cpp.o"
  "CMakeFiles/alsflow_pipeline.dir/pipeline/campaign.cpp.o.d"
  "CMakeFiles/alsflow_pipeline.dir/pipeline/facility.cpp.o"
  "CMakeFiles/alsflow_pipeline.dir/pipeline/facility.cpp.o.d"
  "CMakeFiles/alsflow_pipeline.dir/pipeline/streaming_service.cpp.o"
  "CMakeFiles/alsflow_pipeline.dir/pipeline/streaming_service.cpp.o.d"
  "libalsflow_pipeline.a"
  "libalsflow_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alsflow_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
