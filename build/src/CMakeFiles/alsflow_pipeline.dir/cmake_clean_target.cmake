file(REMOVE_RECURSE
  "libalsflow_pipeline.a"
)
