file(REMOVE_RECURSE
  "libalsflow_tomo.a"
)
