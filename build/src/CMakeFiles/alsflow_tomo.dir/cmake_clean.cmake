file(REMOVE_RECURSE
  "CMakeFiles/alsflow_tomo.dir/tomo/fft.cpp.o"
  "CMakeFiles/alsflow_tomo.dir/tomo/fft.cpp.o.d"
  "CMakeFiles/alsflow_tomo.dir/tomo/filters.cpp.o"
  "CMakeFiles/alsflow_tomo.dir/tomo/filters.cpp.o.d"
  "CMakeFiles/alsflow_tomo.dir/tomo/image.cpp.o"
  "CMakeFiles/alsflow_tomo.dir/tomo/image.cpp.o.d"
  "CMakeFiles/alsflow_tomo.dir/tomo/metrics.cpp.o"
  "CMakeFiles/alsflow_tomo.dir/tomo/metrics.cpp.o.d"
  "CMakeFiles/alsflow_tomo.dir/tomo/phantom.cpp.o"
  "CMakeFiles/alsflow_tomo.dir/tomo/phantom.cpp.o.d"
  "CMakeFiles/alsflow_tomo.dir/tomo/preprocess.cpp.o"
  "CMakeFiles/alsflow_tomo.dir/tomo/preprocess.cpp.o.d"
  "CMakeFiles/alsflow_tomo.dir/tomo/projector.cpp.o"
  "CMakeFiles/alsflow_tomo.dir/tomo/projector.cpp.o.d"
  "CMakeFiles/alsflow_tomo.dir/tomo/recon.cpp.o"
  "CMakeFiles/alsflow_tomo.dir/tomo/recon.cpp.o.d"
  "CMakeFiles/alsflow_tomo.dir/tomo/streaming.cpp.o"
  "CMakeFiles/alsflow_tomo.dir/tomo/streaming.cpp.o.d"
  "libalsflow_tomo.a"
  "libalsflow_tomo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alsflow_tomo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
