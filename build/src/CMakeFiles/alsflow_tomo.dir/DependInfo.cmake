
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tomo/fft.cpp" "src/CMakeFiles/alsflow_tomo.dir/tomo/fft.cpp.o" "gcc" "src/CMakeFiles/alsflow_tomo.dir/tomo/fft.cpp.o.d"
  "/root/repo/src/tomo/filters.cpp" "src/CMakeFiles/alsflow_tomo.dir/tomo/filters.cpp.o" "gcc" "src/CMakeFiles/alsflow_tomo.dir/tomo/filters.cpp.o.d"
  "/root/repo/src/tomo/image.cpp" "src/CMakeFiles/alsflow_tomo.dir/tomo/image.cpp.o" "gcc" "src/CMakeFiles/alsflow_tomo.dir/tomo/image.cpp.o.d"
  "/root/repo/src/tomo/metrics.cpp" "src/CMakeFiles/alsflow_tomo.dir/tomo/metrics.cpp.o" "gcc" "src/CMakeFiles/alsflow_tomo.dir/tomo/metrics.cpp.o.d"
  "/root/repo/src/tomo/phantom.cpp" "src/CMakeFiles/alsflow_tomo.dir/tomo/phantom.cpp.o" "gcc" "src/CMakeFiles/alsflow_tomo.dir/tomo/phantom.cpp.o.d"
  "/root/repo/src/tomo/preprocess.cpp" "src/CMakeFiles/alsflow_tomo.dir/tomo/preprocess.cpp.o" "gcc" "src/CMakeFiles/alsflow_tomo.dir/tomo/preprocess.cpp.o.d"
  "/root/repo/src/tomo/projector.cpp" "src/CMakeFiles/alsflow_tomo.dir/tomo/projector.cpp.o" "gcc" "src/CMakeFiles/alsflow_tomo.dir/tomo/projector.cpp.o.d"
  "/root/repo/src/tomo/recon.cpp" "src/CMakeFiles/alsflow_tomo.dir/tomo/recon.cpp.o" "gcc" "src/CMakeFiles/alsflow_tomo.dir/tomo/recon.cpp.o.d"
  "/root/repo/src/tomo/streaming.cpp" "src/CMakeFiles/alsflow_tomo.dir/tomo/streaming.cpp.o" "gcc" "src/CMakeFiles/alsflow_tomo.dir/tomo/streaming.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/alsflow_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alsflow_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
