# Empty compiler generated dependencies file for alsflow_tomo.
# This may be replaced when dependencies are built.
