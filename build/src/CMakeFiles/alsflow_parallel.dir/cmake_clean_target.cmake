file(REMOVE_RECURSE
  "libalsflow_parallel.a"
)
