file(REMOVE_RECURSE
  "CMakeFiles/alsflow_parallel.dir/parallel/thread_pool.cpp.o"
  "CMakeFiles/alsflow_parallel.dir/parallel/thread_pool.cpp.o.d"
  "libalsflow_parallel.a"
  "libalsflow_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alsflow_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
