# Empty compiler generated dependencies file for alsflow_parallel.
# This may be replaced when dependencies are built.
