
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/catalog/scicat.cpp" "src/CMakeFiles/alsflow_catalog.dir/catalog/scicat.cpp.o" "gcc" "src/CMakeFiles/alsflow_catalog.dir/catalog/scicat.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/alsflow_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alsflow_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alsflow_tomo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alsflow_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
