# Empty compiler generated dependencies file for alsflow_catalog.
# This may be replaced when dependencies are built.
