file(REMOVE_RECURSE
  "libalsflow_catalog.a"
)
