file(REMOVE_RECURSE
  "CMakeFiles/alsflow_catalog.dir/catalog/scicat.cpp.o"
  "CMakeFiles/alsflow_catalog.dir/catalog/scicat.cpp.o.d"
  "libalsflow_catalog.a"
  "libalsflow_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alsflow_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
