file(REMOVE_RECURSE
  "CMakeFiles/alsflow_access.dir/access/render.cpp.o"
  "CMakeFiles/alsflow_access.dir/access/render.cpp.o.d"
  "CMakeFiles/alsflow_access.dir/access/tiled.cpp.o"
  "CMakeFiles/alsflow_access.dir/access/tiled.cpp.o.d"
  "libalsflow_access.a"
  "libalsflow_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alsflow_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
