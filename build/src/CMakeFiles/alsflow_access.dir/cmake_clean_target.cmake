file(REMOVE_RECURSE
  "libalsflow_access.a"
)
