# Empty dependencies file for alsflow_access.
# This may be replaced when dependencies are built.
