
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/beamline/detector.cpp" "src/CMakeFiles/alsflow_beamline.dir/beamline/detector.cpp.o" "gcc" "src/CMakeFiles/alsflow_beamline.dir/beamline/detector.cpp.o.d"
  "/root/repo/src/beamline/file_writer.cpp" "src/CMakeFiles/alsflow_beamline.dir/beamline/file_writer.cpp.o" "gcc" "src/CMakeFiles/alsflow_beamline.dir/beamline/file_writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/alsflow_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alsflow_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alsflow_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alsflow_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alsflow_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alsflow_tomo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alsflow_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
