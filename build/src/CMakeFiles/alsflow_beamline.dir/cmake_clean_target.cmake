file(REMOVE_RECURSE
  "libalsflow_beamline.a"
)
