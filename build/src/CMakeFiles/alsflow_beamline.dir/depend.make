# Empty dependencies file for alsflow_beamline.
# This may be replaced when dependencies are built.
