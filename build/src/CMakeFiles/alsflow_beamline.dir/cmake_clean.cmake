file(REMOVE_RECURSE
  "CMakeFiles/alsflow_beamline.dir/beamline/detector.cpp.o"
  "CMakeFiles/alsflow_beamline.dir/beamline/detector.cpp.o.d"
  "CMakeFiles/alsflow_beamline.dir/beamline/file_writer.cpp.o"
  "CMakeFiles/alsflow_beamline.dir/beamline/file_writer.cpp.o.d"
  "libalsflow_beamline.a"
  "libalsflow_beamline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alsflow_beamline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
