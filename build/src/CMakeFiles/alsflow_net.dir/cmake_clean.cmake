file(REMOVE_RECURSE
  "CMakeFiles/alsflow_net.dir/net/link.cpp.o"
  "CMakeFiles/alsflow_net.dir/net/link.cpp.o.d"
  "libalsflow_net.a"
  "libalsflow_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alsflow_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
