# Empty dependencies file for alsflow_net.
# This may be replaced when dependencies are built.
