file(REMOVE_RECURSE
  "libalsflow_net.a"
)
