file(REMOVE_RECURSE
  "libalsflow_transfer.a"
)
