# Empty dependencies file for alsflow_transfer.
# This may be replaced when dependencies are built.
