file(REMOVE_RECURSE
  "CMakeFiles/alsflow_transfer.dir/transfer/transfer_service.cpp.o"
  "CMakeFiles/alsflow_transfer.dir/transfer/transfer_service.cpp.o.d"
  "libalsflow_transfer.a"
  "libalsflow_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alsflow_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
