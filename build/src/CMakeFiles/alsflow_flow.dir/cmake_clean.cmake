file(REMOVE_RECURSE
  "CMakeFiles/alsflow_flow.dir/flow/engine.cpp.o"
  "CMakeFiles/alsflow_flow.dir/flow/engine.cpp.o.d"
  "CMakeFiles/alsflow_flow.dir/flow/run_db.cpp.o"
  "CMakeFiles/alsflow_flow.dir/flow/run_db.cpp.o.d"
  "libalsflow_flow.a"
  "libalsflow_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alsflow_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
