# Empty dependencies file for alsflow_flow.
# This may be replaced when dependencies are built.
