file(REMOVE_RECURSE
  "libalsflow_flow.a"
)
