
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hpc/adapter.cpp" "src/CMakeFiles/alsflow_hpc.dir/hpc/adapter.cpp.o" "gcc" "src/CMakeFiles/alsflow_hpc.dir/hpc/adapter.cpp.o.d"
  "/root/repo/src/hpc/cloud.cpp" "src/CMakeFiles/alsflow_hpc.dir/hpc/cloud.cpp.o" "gcc" "src/CMakeFiles/alsflow_hpc.dir/hpc/cloud.cpp.o.d"
  "/root/repo/src/hpc/compute_model.cpp" "src/CMakeFiles/alsflow_hpc.dir/hpc/compute_model.cpp.o" "gcc" "src/CMakeFiles/alsflow_hpc.dir/hpc/compute_model.cpp.o.d"
  "/root/repo/src/hpc/globus_compute.cpp" "src/CMakeFiles/alsflow_hpc.dir/hpc/globus_compute.cpp.o" "gcc" "src/CMakeFiles/alsflow_hpc.dir/hpc/globus_compute.cpp.o.d"
  "/root/repo/src/hpc/sfapi.cpp" "src/CMakeFiles/alsflow_hpc.dir/hpc/sfapi.cpp.o" "gcc" "src/CMakeFiles/alsflow_hpc.dir/hpc/sfapi.cpp.o.d"
  "/root/repo/src/hpc/slurm.cpp" "src/CMakeFiles/alsflow_hpc.dir/hpc/slurm.cpp.o" "gcc" "src/CMakeFiles/alsflow_hpc.dir/hpc/slurm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/alsflow_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alsflow_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alsflow_tomo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alsflow_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alsflow_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alsflow_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
