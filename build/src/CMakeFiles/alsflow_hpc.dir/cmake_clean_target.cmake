file(REMOVE_RECURSE
  "libalsflow_hpc.a"
)
