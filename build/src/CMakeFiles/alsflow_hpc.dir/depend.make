# Empty dependencies file for alsflow_hpc.
# This may be replaced when dependencies are built.
