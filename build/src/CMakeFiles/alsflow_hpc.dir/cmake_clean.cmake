file(REMOVE_RECURSE
  "CMakeFiles/alsflow_hpc.dir/hpc/adapter.cpp.o"
  "CMakeFiles/alsflow_hpc.dir/hpc/adapter.cpp.o.d"
  "CMakeFiles/alsflow_hpc.dir/hpc/cloud.cpp.o"
  "CMakeFiles/alsflow_hpc.dir/hpc/cloud.cpp.o.d"
  "CMakeFiles/alsflow_hpc.dir/hpc/compute_model.cpp.o"
  "CMakeFiles/alsflow_hpc.dir/hpc/compute_model.cpp.o.d"
  "CMakeFiles/alsflow_hpc.dir/hpc/globus_compute.cpp.o"
  "CMakeFiles/alsflow_hpc.dir/hpc/globus_compute.cpp.o.d"
  "CMakeFiles/alsflow_hpc.dir/hpc/sfapi.cpp.o"
  "CMakeFiles/alsflow_hpc.dir/hpc/sfapi.cpp.o.d"
  "CMakeFiles/alsflow_hpc.dir/hpc/slurm.cpp.o"
  "CMakeFiles/alsflow_hpc.dir/hpc/slurm.cpp.o.d"
  "libalsflow_hpc.a"
  "libalsflow_hpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alsflow_hpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
