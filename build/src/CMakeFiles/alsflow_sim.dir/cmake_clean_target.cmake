file(REMOVE_RECURSE
  "libalsflow_sim.a"
)
