# Empty compiler generated dependencies file for alsflow_sim.
# This may be replaced when dependencies are built.
