file(REMOVE_RECURSE
  "CMakeFiles/alsflow_sim.dir/sim/engine.cpp.o"
  "CMakeFiles/alsflow_sim.dir/sim/engine.cpp.o.d"
  "CMakeFiles/alsflow_sim.dir/sim/task.cpp.o"
  "CMakeFiles/alsflow_sim.dir/sim/task.cpp.o.d"
  "libalsflow_sim.a"
  "libalsflow_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alsflow_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
