file(REMOVE_RECURSE
  "CMakeFiles/alsflow_data.dir/data/ah5.cpp.o"
  "CMakeFiles/alsflow_data.dir/data/ah5.cpp.o.d"
  "CMakeFiles/alsflow_data.dir/data/multiscale.cpp.o"
  "CMakeFiles/alsflow_data.dir/data/multiscale.cpp.o.d"
  "CMakeFiles/alsflow_data.dir/data/scan_meta.cpp.o"
  "CMakeFiles/alsflow_data.dir/data/scan_meta.cpp.o.d"
  "CMakeFiles/alsflow_data.dir/data/tiff.cpp.o"
  "CMakeFiles/alsflow_data.dir/data/tiff.cpp.o.d"
  "libalsflow_data.a"
  "libalsflow_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alsflow_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
