file(REMOVE_RECURSE
  "libalsflow_data.a"
)
