# Empty dependencies file for alsflow_data.
# This may be replaced when dependencies are built.
