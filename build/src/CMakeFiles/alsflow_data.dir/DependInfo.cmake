
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/ah5.cpp" "src/CMakeFiles/alsflow_data.dir/data/ah5.cpp.o" "gcc" "src/CMakeFiles/alsflow_data.dir/data/ah5.cpp.o.d"
  "/root/repo/src/data/multiscale.cpp" "src/CMakeFiles/alsflow_data.dir/data/multiscale.cpp.o" "gcc" "src/CMakeFiles/alsflow_data.dir/data/multiscale.cpp.o.d"
  "/root/repo/src/data/scan_meta.cpp" "src/CMakeFiles/alsflow_data.dir/data/scan_meta.cpp.o" "gcc" "src/CMakeFiles/alsflow_data.dir/data/scan_meta.cpp.o.d"
  "/root/repo/src/data/tiff.cpp" "src/CMakeFiles/alsflow_data.dir/data/tiff.cpp.o" "gcc" "src/CMakeFiles/alsflow_data.dir/data/tiff.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/alsflow_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alsflow_tomo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alsflow_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
