# Empty compiler generated dependencies file for alsflow_storage.
# This may be replaced when dependencies are built.
