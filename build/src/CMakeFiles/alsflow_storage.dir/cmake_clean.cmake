file(REMOVE_RECURSE
  "CMakeFiles/alsflow_storage.dir/storage/endpoint.cpp.o"
  "CMakeFiles/alsflow_storage.dir/storage/endpoint.cpp.o.d"
  "CMakeFiles/alsflow_storage.dir/storage/retention.cpp.o"
  "CMakeFiles/alsflow_storage.dir/storage/retention.cpp.o.d"
  "libalsflow_storage.a"
  "libalsflow_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alsflow_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
