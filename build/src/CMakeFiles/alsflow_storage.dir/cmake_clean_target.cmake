file(REMOVE_RECURSE
  "libalsflow_storage.a"
)
