file(REMOVE_RECURSE
  "CMakeFiles/alsflow_common.dir/common/checksum.cpp.o"
  "CMakeFiles/alsflow_common.dir/common/checksum.cpp.o.d"
  "CMakeFiles/alsflow_common.dir/common/log.cpp.o"
  "CMakeFiles/alsflow_common.dir/common/log.cpp.o.d"
  "CMakeFiles/alsflow_common.dir/common/rng.cpp.o"
  "CMakeFiles/alsflow_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/alsflow_common.dir/common/stats.cpp.o"
  "CMakeFiles/alsflow_common.dir/common/stats.cpp.o.d"
  "CMakeFiles/alsflow_common.dir/common/units.cpp.o"
  "CMakeFiles/alsflow_common.dir/common/units.cpp.o.d"
  "libalsflow_common.a"
  "libalsflow_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alsflow_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
