# Empty dependencies file for alsflow_common.
# This may be replaced when dependencies are built.
