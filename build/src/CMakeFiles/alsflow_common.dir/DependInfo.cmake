
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/checksum.cpp" "src/CMakeFiles/alsflow_common.dir/common/checksum.cpp.o" "gcc" "src/CMakeFiles/alsflow_common.dir/common/checksum.cpp.o.d"
  "/root/repo/src/common/log.cpp" "src/CMakeFiles/alsflow_common.dir/common/log.cpp.o" "gcc" "src/CMakeFiles/alsflow_common.dir/common/log.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/alsflow_common.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/alsflow_common.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/alsflow_common.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/alsflow_common.dir/common/stats.cpp.o.d"
  "/root/repo/src/common/units.cpp" "src/CMakeFiles/alsflow_common.dir/common/units.cpp.o" "gcc" "src/CMakeFiles/alsflow_common.dir/common/units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
