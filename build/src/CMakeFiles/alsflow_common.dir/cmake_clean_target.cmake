file(REMOVE_RECURSE
  "libalsflow_common.a"
)
