# Empty dependencies file for bench_fig2_streaming_latency.
# This may be replaced when dependencies are built.
