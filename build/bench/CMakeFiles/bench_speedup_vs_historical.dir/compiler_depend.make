# Empty compiler generated dependencies file for bench_speedup_vs_historical.
# This may be replaced when dependencies are built.
