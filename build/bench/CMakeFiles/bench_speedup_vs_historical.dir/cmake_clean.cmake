file(REMOVE_RECURSE
  "CMakeFiles/bench_speedup_vs_historical.dir/bench_speedup_vs_historical.cpp.o"
  "CMakeFiles/bench_speedup_vs_historical.dir/bench_speedup_vs_historical.cpp.o.d"
  "bench_speedup_vs_historical"
  "bench_speedup_vs_historical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_speedup_vs_historical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
