# Empty compiler generated dependencies file for bench_table2_flow_stats.
# This may be replaced when dependencies are built.
