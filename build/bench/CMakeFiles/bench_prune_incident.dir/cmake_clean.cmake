file(REMOVE_RECURSE
  "CMakeFiles/bench_prune_incident.dir/bench_prune_incident.cpp.o"
  "CMakeFiles/bench_prune_incident.dir/bench_prune_incident.cpp.o.d"
  "bench_prune_incident"
  "bench_prune_incident.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prune_incident.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
