# Empty compiler generated dependencies file for bench_prune_incident.
# This may be replaced when dependencies are built.
