# Empty dependencies file for bench_fig3_lifecycle.
# This may be replaced when dependencies are built.
