file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_lifecycle.dir/bench_fig3_lifecycle.cpp.o"
  "CMakeFiles/bench_fig3_lifecycle.dir/bench_fig3_lifecycle.cpp.o.d"
  "bench_fig3_lifecycle"
  "bench_fig3_lifecycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_lifecycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
