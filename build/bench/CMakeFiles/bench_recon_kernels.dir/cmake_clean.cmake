file(REMOVE_RECURSE
  "CMakeFiles/bench_recon_kernels.dir/bench_recon_kernels.cpp.o"
  "CMakeFiles/bench_recon_kernels.dir/bench_recon_kernels.cpp.o.d"
  "bench_recon_kernels"
  "bench_recon_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recon_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
