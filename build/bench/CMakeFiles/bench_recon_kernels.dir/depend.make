# Empty dependencies file for bench_recon_kernels.
# This may be replaced when dependencies are built.
