# Empty dependencies file for bench_qos_ablation.
# This may be replaced when dependencies are built.
