file(REMOVE_RECURSE
  "CMakeFiles/bench_qos_ablation.dir/bench_qos_ablation.cpp.o"
  "CMakeFiles/bench_qos_ablation.dir/bench_qos_ablation.cpp.o.d"
  "bench_qos_ablation"
  "bench_qos_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_qos_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
