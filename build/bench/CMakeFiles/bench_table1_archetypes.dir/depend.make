# Empty dependencies file for bench_table1_archetypes.
# This may be replaced when dependencies are built.
