file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_archetypes.dir/bench_table1_archetypes.cpp.o"
  "CMakeFiles/bench_table1_archetypes.dir/bench_table1_archetypes.cpp.o.d"
  "bench_table1_archetypes"
  "bench_table1_archetypes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_archetypes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
